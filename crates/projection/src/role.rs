//! Roles and role multisets (paper §2, "Preliminaries").
//!
//! A *role-set* is a multiset over roles: `m : roles → ℕ` maps each role to
//! its multiplicity. Nodes in the buffer are annotated with role-sets; a
//! node can carry the same role several times when a descendant-axis path
//! matches it in several ways (paper Example 1: `//a//b` matches `/a/a/b`
//! with multiplicity 2).

use std::fmt;

/// An interned role. Each projection-tree node defines one role
/// (`rπ : nodes → roles`), and each query subexpression is assigned one
/// (`rQ : XQ → roles`, injective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Role(pub u32);

impl Role {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A multiset of roles, optimized for the common cases of zero, one or two
/// instances.
///
/// Stored as a sorted small vector of `(role, multiplicity)` pairs; the
/// paper notes that "the memory overhead is small" is a key advantage of
/// reference-counting-style schemes, so the representation matters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoleSet {
    entries: Vec<(Role, u32)>,
}

impl RoleSet {
    /// The empty role-set (all multiplicities zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when every multiplicity is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of role *instances* (sum of multiplicities).
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Number of distinct roles present.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Multiplicity of `role` in this set.
    pub fn count(&self, role: Role) -> u32 {
        match self.entries.binary_search_by_key(&role, |&(r, _)| r) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// `addρ(r, n)` from the paper: increments the multiplicity of `role`.
    pub fn add(&mut self, role: Role) {
        self.add_n(role, 1);
    }

    /// Adds `n` instances of `role` at once.
    pub fn add_n(&mut self, role: Role, n: u32) {
        if n == 0 {
            return;
        }
        match self.entries.binary_search_by_key(&role, |&(r, _)| r) {
            Ok(i) => self.entries[i].1 += n,
            Err(i) => self.entries.insert(i, (role, n)),
        }
    }

    /// Removes every entry, keeping the allocation for reuse (buffer
    /// node slots recycle their role-sets on the hot path).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `remρ(r, n)` from the paper: decrements the multiplicity of `role`.
    ///
    /// Removal of a role with multiplicity zero is *undefined* in the paper
    /// (safety requirement (1)); here it returns `false` and leaves the set
    /// unchanged, so callers can surface the violation.
    #[must_use]
    pub fn remove(&mut self, role: Role) -> bool {
        self.remove_n(role, 1) == 1
    }

    /// Removes up to `n` instances; returns how many were actually removed.
    pub fn remove_n(&mut self, role: Role, n: u32) -> u32 {
        match self.entries.binary_search_by_key(&role, |&(r, _)| r) {
            Ok(i) => {
                let have = self.entries[i].1;
                let removed = have.min(n);
                if removed == have {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 -= removed;
                }
                removed
            }
            Err(_) => 0,
        }
    }

    /// Iterates `(role, multiplicity)` pairs in role order.
    pub fn iter(&self) -> impl Iterator<Item = (Role, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(Role, u32)>()
    }
}

impl fmt::Display for RoleSet {
    /// Renders like the paper's figures: `{r2,r3,r3}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (r, c) in self.iter() {
            for _ in 0..c {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{r}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<Role> for RoleSet {
    fn from_iter<I: IntoIterator<Item = Role>>(iter: I) -> Self {
        let mut s = RoleSet::new();
        for r in iter {
            s.add(r);
        }
        s
    }
}

/// Allocates roles and remembers a human-readable origin for each, used by
/// traces, the pretty-printer and error messages.
#[derive(Debug, Default, Clone)]
pub struct RoleCatalog {
    origins: Vec<String>,
}

impl RoleCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh role with a description of the query expression
    /// it belongs to (the paper's injective `rQ`).
    pub fn fresh(&mut self, origin: impl Into<String>) -> Role {
        let r = Role(self.origins.len() as u32);
        self.origins.push(origin.into());
        r
    }

    /// Description of the expression that defined `role`.
    pub fn origin(&self, role: Role) -> &str {
        &self.origins[role.index()]
    }

    /// Number of allocated roles.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Iterates all roles in allocation order.
    pub fn roles(&self) -> impl Iterator<Item = Role> {
        (0..self.origins.len() as u32).map(Role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut s = RoleSet::new();
        let r1 = Role(1);
        let r2 = Role(2);
        s.add(r1);
        s.add(r1);
        s.add(r2);
        assert_eq!(s.count(r1), 2);
        assert_eq!(s.count(r2), 1);
        assert_eq!(s.total(), 3);
        assert!(s.remove(r1));
        assert_eq!(s.count(r1), 1);
        assert!(s.remove(r1));
        assert!(!s.remove(r1), "removal at multiplicity zero is rejected");
        assert!(!s.is_empty());
        assert!(s.remove(r2));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_n_partial() {
        let mut s = RoleSet::new();
        s.add_n(Role(7), 5);
        assert_eq!(s.remove_n(Role(7), 3), 3);
        assert_eq!(s.count(Role(7)), 2);
        assert_eq!(s.remove_n(Role(7), 10), 2);
        assert!(s.is_empty());
        assert_eq!(s.remove_n(Role(7), 1), 0);
    }

    #[test]
    fn display_matches_paper_figures() {
        let mut s = RoleSet::new();
        s.add(Role(3));
        s.add(Role(3));
        s.add(Role(2));
        assert_eq!(s.to_string(), "{r2,r3,r3}");
        assert_eq!(RoleSet::new().to_string(), "{}");
    }

    #[test]
    fn from_iterator() {
        let s: RoleSet = [Role(1), Role(2), Role(1)].into_iter().collect();
        assert_eq!(s.count(Role(1)), 2);
        assert_eq!(s.count(Role(2)), 1);
    }

    #[test]
    fn catalog_allocates_sequentially() {
        let mut c = RoleCatalog::new();
        let a = c.fresh("for $x");
        let b = c.fresh("exists($x/price)");
        assert_eq!(a, Role(0));
        assert_eq!(b, Role(1));
        assert_eq!(c.origin(b), "exists($x/price)");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut s = RoleSet::new();
        s.add_n(Role(0), 0);
        assert!(s.is_empty());
    }
}
