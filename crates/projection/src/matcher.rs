//! Matching an XML token stream against a projection tree.
//!
//! This implements the runtime side of paper §2: while reading the input
//! stream, each token is matched against the projection tree, and
//!
//! 1. a node is preserved (buffered, with roles) when the "successor state
//!    maps to a node in the projection tree" — condition (1);
//! 2. a node is preserved *without* roles when discarding it could promote
//!    a descendant into a false `child::` match — condition (2),
//!    paper Example 2.
//!
//! Role multiplicities follow the paper's multiset semantics (Example 1:
//! `//a//b` matches `/a/a/b` in two ways, so the node receives the role
//! twice — Example 3, Fig. 4(c)).
//!
//! Two execution modes share the same semantics:
//!
//! * **DFA mode** ([`crate::dfa::LazyDfa`]) — the paper's lazily
//!   constructed deterministic automaton, used when the projection tree has
//!   no positional predicates. Transition results are memoized per
//!   `(state, tag)`.
//! * **NFA mode** — per-instance simulation with explicit frames, required
//!   when `[position() = 1]` predicates are present, because "first
//!   witness" is relative to a concrete ancestor instance and cannot be
//!   captured by a finite state.
//!
//! ## Allocation discipline (NFA mode)
//!
//! The NFA hot path is allocation-free in steady state, by three
//! invariants:
//!
//! 1. **Frame pooling** — a frame popped on `close` keeps the capacity of
//!    its `matches`/`pending`/`fired` vectors and is recycled by the next
//!    `open`. The pool never exceeds the maximum element depth seen.
//! 2. **Matcher-resident scratch** — the per-event temporaries (candidate
//!    edges, fired-this-event records, the outcome's role list) live on
//!    the matcher and are cleared, not reallocated, per event. This is
//!    also why [`Outcome`] borrows its roles instead of owning a `Vec`.
//! 3. **Edge memoization** — candidate child edges and pending-edge name
//!    tests are memoized per (projection node, tag); rows are built on
//!    first sight of a (node, tag) pair and read-only afterwards.
//!
//! Pending edges are inherited by slice copy into the pooled frame
//! (`PendingEdge` is `Copy`), never by cloning a fresh vector.

use crate::dfa::LazyDfa;
use crate::path::{PAxis, Pred};
use crate::role::Role;
use crate::tree::{ProjNodeId, ProjTree};
use gcx_xml::TagId;

/// The matcher's verdict for one input node.
///
/// `roles` borrows from the matcher's internal storage (the DFA's state
/// table or the NFA scratch), so producing an outcome allocates nothing
/// in either mode; copy the roles out before the next matcher call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome<'m> {
    /// Copy this input node into the buffer?
    pub buffer: bool,
    /// Role instances to assign (repeats encode multiplicity).
    pub roles: &'m [Role],
    /// True when the node is preserved only by condition (2) — it matches
    /// nothing but must not be discarded to protect `child::` semantics.
    pub structural: bool,
}

impl Outcome<'_> {
    fn skip() -> Outcome<'static> {
        Outcome {
            buffer: false,
            roles: &[],
            structural: false,
        }
    }
}

/// A match instance at a frame: the projection node plus whether it was
/// reached "as self" (via the `dos::node()` self-closure). Aggregate roles
/// (paper §6) are only assigned on self matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MatchInst {
    node: ProjNodeId,
    via_self: bool,
}

/// A pending descendant-like edge: `node` may match any strict descendant
/// of the frame that spawned it; `origin` is that frame's index (the frame
/// holding the `[position()=1]` firing record for this edge).
#[derive(Debug, Clone, Copy)]
struct PendingEdge {
    node: ProjNodeId,
    origin: u32,
}

#[derive(Debug, Default)]
struct Frame {
    matches: Vec<MatchInst>,
    pending: Vec<PendingEdge>,
    /// Positional edges that have already fired with this frame as origin.
    fired: Vec<ProjNodeId>,
    /// Precomputed condition (2) for children of this frame.
    preserve_children: bool,
    /// Nothing below this frame can match: no pending edges, no outgoing
    /// child edges, no structural preservation.
    dead_below: bool,
}

enum Mode {
    Dfa { dfa: Box<LazyDfa>, stack: Vec<u32> },
    Nfa { frames: Vec<Frame> },
}

/// Reusable NFA-mode storage (module docs, "Allocation discipline"):
/// pooled frames, per-event temporaries, and the per-(node, tag) edge
/// memo. Unused (and empty) in DFA mode.
#[derive(Default)]
struct NfaScratch {
    /// Frames popped on `close`, recycled on `open` with their vector
    /// capacities intact.
    pool: Vec<Frame>,
    /// Candidate (edge, origin frame) pairs for the current event.
    cands: Vec<(ProjNodeId, u32)>,
    /// Positional edges fired by the current event.
    fired_now: Vec<(ProjNodeId, u32)>,
    /// Roles of the current event's matches (backs [`Outcome::roles`]).
    roles: Vec<Role>,
    /// Match instances of the current text event (text pushes no frame,
    /// so these cannot live in a pooled frame).
    text_matches: Vec<MatchInst>,
    memo: EdgeMemo,
}

/// Lazily built memo of the projection tree's edge tests, keyed by
/// (projection node, tag): which child-axis edges of a node accept a
/// given element tag, and whether a node's own step test does. Rows are
/// computed on first sight and immutable afterwards — pure functions of
/// the (immutable) tree.
#[derive(Default)]
struct EdgeMemo {
    /// `child_rows[v][tag]`: the child-axis edges of `v` accepting
    /// element `tag` (`None` = not built yet).
    child_rows: Vec<Vec<Option<Box<[ProjNodeId]>>>>,
    /// `test_rows[v][tag]`: does `v`'s own step test accept element
    /// `tag`? 0 unknown, 1 no, 2 yes. Used for pending descendant edges.
    test_rows: Vec<Vec<u8>>,
}

impl EdgeMemo {
    fn child_edges(&mut self, tree: &ProjTree, v: ProjNodeId, tag: TagId) -> &[ProjNodeId] {
        let (vi, ti) = (v.index(), tag.index());
        if self.child_rows.len() <= vi {
            self.child_rows.resize_with(vi + 1, Vec::new);
        }
        let row = &mut self.child_rows[vi];
        if row.len() <= ti {
            row.resize(ti + 1, None);
        }
        if row[ti].is_none() {
            let mut edges = Vec::new();
            for &c in tree.children(v) {
                let s = tree.step(c);
                if s.axis == PAxis::Child && s.test.matches_element(tag) {
                    edges.push(c);
                }
            }
            row[ti] = Some(edges.into_boxed_slice());
        }
        row[ti].as_deref().expect("just built")
    }

    fn edge_accepts(&mut self, tree: &ProjTree, v: ProjNodeId, tag: TagId) -> bool {
        let (vi, ti) = (v.index(), tag.index());
        if self.test_rows.len() <= vi {
            self.test_rows.resize_with(vi + 1, Vec::new);
        }
        let row = &mut self.test_rows[vi];
        if row.len() <= ti {
            row.resize(ti + 1, 0);
        }
        if row[ti] == 0 {
            row[ti] = if tree.step(v).test.matches_element(tag) {
                2
            } else {
                1
            };
        }
        row[ti] == 2
    }
}

/// Streaming projection matcher (see module docs).
pub struct StreamMatcher<'t> {
    tree: &'t ProjTree,
    mode: Mode,
    root_roles: Vec<Role>,
    depth: usize,
    nfa: NfaScratch,
}

impl<'t> StreamMatcher<'t> {
    /// Creates a matcher positioned at the virtual document root, in DFA
    /// mode when the projection tree permits it.
    pub fn new(tree: &'t ProjTree) -> Self {
        Self::with_mode(tree, tree.has_positional())
    }

    /// Creates a matcher that runs the frame-based NFA simulation even
    /// when the tree has no positional predicates (which would normally
    /// select DFA mode). Both modes implement identical semantics; this
    /// constructor lets differential tests and benches drive the pooled
    /// NFA path over arbitrary trees.
    pub fn new_forced_nfa(tree: &'t ProjTree) -> Self {
        Self::with_mode(tree, true)
    }

    fn with_mode(tree: &'t ProjTree, use_nfa: bool) -> Self {
        let mut root_matches = vec![MatchInst {
            node: ProjTree::ROOT,
            via_self: false,
        }];
        // dos-self closure at the virtual root: a `dos::node()` edge
        // directly below a matched node also matches the node itself. The
        // virtual root is neither element nor text; only `node()` applies.
        let mut i = 0;
        while i < root_matches.len() {
            let v = root_matches[i].node;
            for &c in tree.children(v) {
                let s = tree.step(c);
                if s.axis == PAxis::DescendantOrSelf
                    && matches!(s.test, crate::path::PTest::AnyNode)
                {
                    root_matches.push(MatchInst {
                        node: c,
                        via_self: true,
                    });
                }
            }
            i += 1;
        }
        let root_roles = roles_of(tree, &root_matches);
        let mode = if use_nfa {
            let frame = make_frame(tree, root_matches, Vec::new(), 0);
            Mode::Nfa {
                frames: vec![frame],
            }
        } else {
            let tuples: Vec<(ProjNodeId, bool)> =
                root_matches.iter().map(|m| (m.node, m.via_self)).collect();
            let dfa = Box::new(LazyDfa::new(tree, &tuples));
            let stack = vec![LazyDfa::INITIAL];
            Mode::Dfa { dfa, stack }
        };
        StreamMatcher {
            tree,
            mode,
            root_roles,
            depth: 0,
            nfa: NfaScratch::default(),
        }
    }

    /// Roles the virtual document root itself carries (non-empty only when
    /// the query outputs `$root`).
    pub fn root_roles(&self) -> &[Role] {
        &self.root_roles
    }

    /// Current element depth (0 = at the virtual root).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// True when nothing below the current position can match: the
    /// preprojector may skip the whole subtree without consulting the
    /// matcher (it must still track nesting itself).
    pub fn is_dead(&self) -> bool {
        match &self.mode {
            Mode::Dfa { dfa, stack } => {
                let s = *stack.last().expect("stack never empty");
                dfa.is_dead(s)
            }
            Mode::Nfa { frames } => frames.last().expect("frames never empty").dead_below,
        }
    }

    /// Processes an opening tag; returns the buffering verdict.
    pub fn open(&mut self, tag: TagId) -> Outcome<'_> {
        self.depth += 1;
        match &mut self.mode {
            Mode::Dfa { dfa, stack } => {
                let from = *stack.last().expect("stack never empty");
                let to = dfa.transition(self.tree, from, tag);
                stack.push(to);
                let matched = dfa.has_matches(to);
                let structural = !matched && dfa.preserve_children(from);
                Outcome {
                    buffer: matched || structural,
                    roles: dfa.entry_roles(to),
                    structural,
                }
            }
            Mode::Nfa { frames } => {
                let pi = frames.len() - 1;
                let tree = self.tree;
                let NfaScratch {
                    pool,
                    cands,
                    fired_now,
                    roles,
                    memo,
                    ..
                } = &mut self.nfa;
                // Collect candidate edges first (child edges from the
                // parent's matches, then pending descendant-like edges),
                // then apply positional firing in order. Both lookups go
                // through the per-(node, tag) memo.
                cands.clear();
                for m in &frames[pi].matches {
                    for &c in memo.child_edges(tree, m.node, tag) {
                        cands.push((c, pi as u32));
                    }
                }
                for pe in &frames[pi].pending {
                    if memo.edge_accepts(tree, pe.node, tag) {
                        cands.push((pe.node, pe.origin));
                    }
                }
                // The new frame comes from the pool; its vectors are
                // empty but keep their high-water capacity.
                let mut frame = pool.pop().unwrap_or_default();
                // `[position()=1]` fires once per origin instance, but an
                // origin with match multiplicity m contributes m candidate
                // entries for the *same* element — all of them are part of
                // this first witness (the role lands with multiplicity m,
                // mirroring the chain-assignment count; see Example 1).
                fired_now.clear();
                for &(c, o) in cands.iter() {
                    if tree.step(c).pred == Pred::First {
                        let fired = &mut frames[o as usize].fired;
                        if fired.contains(&c) {
                            if !fired_now.contains(&(c, o)) {
                                continue; // witnessed by an earlier element
                            }
                        } else {
                            fired.push(c);
                            fired_now.push((c, o));
                        }
                    }
                    frame.matches.push(MatchInst {
                        node: c,
                        via_self: false,
                    });
                }
                close_self(tree, &mut frame.matches, |t| t.matches_element(tag));
                let structural = frame.matches.is_empty() && frames[pi].preserve_children;
                roles.clear();
                roles_of_into(tree, &frame.matches, roles);
                let buffer = !frame.matches.is_empty() || structural;
                // Inherit the parent's pending edges by slice copy, then
                // append the new matches' descendant-like edges.
                frame.pending.extend_from_slice(&frames[pi].pending);
                let own_index = frames.len() as u32;
                {
                    let Frame {
                        matches, pending, ..
                    } = &mut frame;
                    for m in matches.iter() {
                        for &c in tree.children(m.node) {
                            if tree.step(c).axis.is_descendant_like() {
                                pending.push(PendingEdge {
                                    node: c,
                                    origin: own_index,
                                });
                            }
                        }
                    }
                }
                frame.preserve_children = preserve_condition(tree, &frame.matches, &frame.pending);
                frame.dead_below = frame.pending.is_empty()
                    && !frame.preserve_children
                    && frame
                        .matches
                        .iter()
                        .all(|m| tree.children(m.node).is_empty());
                frames.push(frame);
                Outcome {
                    buffer,
                    roles,
                    structural,
                }
            }
        }
    }

    /// Processes a closing tag. In NFA mode the popped frame is returned
    /// to the pool with its vector capacities intact.
    pub fn close(&mut self) {
        debug_assert!(self.depth > 0, "close below the document root");
        self.depth -= 1;
        match &mut self.mode {
            Mode::Dfa { stack, .. } => {
                stack.pop();
                debug_assert!(!stack.is_empty());
            }
            Mode::Nfa { frames } => {
                let mut f = frames.pop().expect("frames never empty");
                debug_assert!(!frames.is_empty());
                f.matches.clear();
                f.pending.clear();
                f.fired.clear();
                self.nfa.pool.push(f);
            }
        }
    }

    /// Processes a text node (no frame is pushed; text has no children).
    pub fn text(&mut self) -> Outcome<'_> {
        match &mut self.mode {
            Mode::Dfa { dfa, stack } => {
                let s = *stack.last().expect("stack never empty");
                let (buffer, roles) = dfa.text_outcome(self.tree, s);
                Outcome {
                    buffer,
                    roles,
                    structural: false,
                }
            }
            Mode::Nfa { frames } => {
                let tree = self.tree;
                let pi = frames.len() - 1;
                let NfaScratch {
                    cands,
                    fired_now,
                    roles,
                    text_matches,
                    ..
                } = &mut self.nfa;
                cands.clear();
                for m in &frames[pi].matches {
                    for &c in tree.children(m.node) {
                        let s = tree.step(c);
                        if s.axis == PAxis::Child && s.test.matches_text() {
                            cands.push((c, pi as u32));
                        }
                    }
                }
                for pe in &frames[pi].pending {
                    if tree.step(pe.node).test.matches_text() {
                        cands.push((pe.node, pe.origin));
                    }
                }
                text_matches.clear();
                fired_now.clear();
                for &(c, o) in cands.iter() {
                    if tree.step(c).pred == Pred::First {
                        let fired = &mut frames[o as usize].fired;
                        if fired.contains(&c) {
                            if !fired_now.contains(&(c, o)) {
                                continue;
                            }
                        } else {
                            fired.push(c);
                            fired_now.push((c, o));
                        }
                    }
                    text_matches.push(MatchInst {
                        node: c,
                        via_self: false,
                    });
                }
                close_self(tree, text_matches, |t| t.matches_text());
                if text_matches.is_empty() {
                    return Outcome::skip();
                }
                roles.clear();
                roles_of_into(tree, text_matches, roles);
                Outcome {
                    buffer: true,
                    roles,
                    structural: false,
                }
            }
        }
    }

    /// True when the matcher runs in the paper's lazy-DFA mode.
    pub fn uses_dfa(&self) -> bool {
        matches!(self.mode, Mode::Dfa { .. })
    }

    /// Number of DFA states constructed so far (0 in NFA mode). Lets tests
    /// and the bench harness observe laziness.
    pub fn dfa_states(&self) -> usize {
        match &self.mode {
            Mode::Dfa { dfa, .. } => dfa.len(),
            Mode::Nfa { .. } => 0,
        }
    }
}

/// Extends `new` with the `dos::node()` self-closure: whenever a matched
/// node has a `descendant-or-self` child whose test accepts the *current*
/// node, that child matches too (recursively).
fn close_self<F: Fn(crate::path::PTest) -> bool>(
    tree: &ProjTree,
    new: &mut Vec<MatchInst>,
    accepts: F,
) {
    let mut i = 0;
    while i < new.len() {
        let v = new[i].node;
        for &c in tree.children(v) {
            let s = tree.step(c);
            if s.axis == PAxis::DescendantOrSelf && accepts(s.test) {
                debug_assert_eq!(
                    s.pred,
                    Pred::True,
                    "positional predicates are not supported on dos steps"
                );
                new.push(MatchInst {
                    node: c,
                    via_self: true,
                });
            }
        }
        i += 1;
    }
}

/// Collects the role instances for a set of match instances. Aggregate
/// roles are assigned only when matched as self (the subtree root).
fn roles_of(tree: &ProjTree, matches: &[MatchInst]) -> Vec<Role> {
    let mut roles = Vec::new();
    roles_of_into(tree, matches, &mut roles);
    roles
}

/// [`roles_of`] into a caller-provided (reusable) vector.
fn roles_of_into(tree: &ProjTree, matches: &[MatchInst], roles: &mut Vec<Role>) {
    for m in matches {
        let n = tree.node(m.node);
        if let Some(r) = n.role {
            if !n.aggregate || m.via_self {
                roles.push(r);
            }
        }
    }
}

/// Builds a frame for freshly matched instances: computes the new pending
/// list (inherited + descendant-like edges of the new matches) and the
/// condition-(2) flag for the frame's children.
fn make_frame(
    tree: &ProjTree,
    matches: Vec<MatchInst>,
    mut pending: Vec<PendingEdge>,
    own_index: u32,
) -> Frame {
    for m in &matches {
        for &c in tree.children(m.node) {
            if tree.step(c).axis.is_descendant_like() {
                pending.push(PendingEdge {
                    node: c,
                    origin: own_index,
                });
            }
        }
    }
    let preserve_children = preserve_condition(tree, &matches, &pending);
    let dead_below = pending.is_empty()
        && !preserve_children
        && matches.iter().all(|m| tree.children(m.node).is_empty());
    Frame {
        matches,
        pending,
        fired: Vec::new(),
        preserve_children,
        dead_below,
    }
}

/// Paper condition (2): children of this frame must be preserved when some
/// match has a `child::τ1` edge and some descendant-like edge with test τ2
/// reaches below this frame, with τ1 and τ2 able to accept the same node —
/// otherwise discarding the child could promote a deeper τ2-match into a
/// false `child::τ1` match.
fn preserve_condition(tree: &ProjTree, matches: &[MatchInst], pending: &[PendingEdge]) -> bool {
    if pending.is_empty() {
        return false;
    }
    for m in matches {
        for &c in tree.children(m.node) {
            let s = tree.step(c);
            if s.axis != PAxis::Child {
                continue;
            }
            for pe in pending {
                if s.test.overlaps(tree.step(pe.node).test) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{PStep, PTest, RelPath};
    use crate::role::RoleSet;
    use gcx_xml::{TagInterner, XmlLexer, XmlToken};

    /// Drives a matcher over a document string; returns per-node outcomes
    /// rendered as `(path-ish label, buffered, roles)`.
    fn run(tree: &ProjTree, tags: &mut TagInterner, doc: &str) -> Vec<(String, bool, String)> {
        let mut lexer = XmlLexer::new(doc.as_bytes(), tags);
        let tokens = lexer.tokenize_all().unwrap();
        let mut m = StreamMatcher::new(tree);
        let mut out = Vec::new();
        let mut path: Vec<String> = Vec::new();
        for t in &tokens {
            match t {
                XmlToken::Open(tag) => {
                    path.push(tags.name(*tag).to_string());
                    let o = m.open(*tag);
                    let rs: RoleSet = o.roles.iter().copied().collect();
                    out.push((format!("/{}", path.join("/")), o.buffer, rs.to_string()));
                }
                XmlToken::Close(_) => {
                    m.close();
                    path.pop();
                }
                XmlToken::Text(_) => {
                    let o = m.text();
                    let rs: RoleSet = o.roles.iter().copied().collect();
                    out.push((
                        format!("/{}/text()", path.join("/")),
                        o.buffer,
                        rs.to_string(),
                    ));
                }
            }
        }
        out
    }

    /// Fig. 4(b): t = v1:/ with v2:.//a, and v3:.//b below v2;
    /// rπ(v2)=r2, rπ(v3)=r3.
    fn fig4b_tree(tags: &mut TagInterner) -> ProjTree {
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut t = ProjTree::new();
        let v2 = t.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(a)),
            Some(Role(2)),
        );
        let _v3 = t.add_child(v2, PStep::descendant(PTest::Tag(b)), Some(Role(3)));
        t
    }

    /// The document of Fig. 4(a): n1:a { n2:a { n3:b }, n4:b }.
    const FIG4_DOC: &str = "<a><a><b></b></a><b></b></a>";

    /// Paper Example 3 / Fig. 4(c): the first b (path /a/a/b) gets {r3,r3}
    /// because //a//b matches it with multiplicity 2; the second b (path
    /// /a/b) gets {r3}.
    #[test]
    fn fig4c_role_multiplicity() {
        let mut tags = TagInterner::new();
        let tree = fig4b_tree(&mut tags);
        let out = run(&tree, &mut tags, FIG4_DOC);
        assert_eq!(
            out,
            vec![
                ("/a".to_string(), true, "{r2}".to_string()),
                ("/a/a".to_string(), true, "{r2}".to_string()),
                ("/a/a/b".to_string(), true, "{r3,r3}".to_string()),
                ("/a/b".to_string(), true, "{r3}".to_string()),
            ]
        );
    }

    /// Fig. 4(d): t' = v1:/ with *independent* v2:.//a and v3:.//b.
    /// Each b gets r3 exactly once (Fig. 4(e)).
    #[test]
    fn fig4e_independent_paths() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut tree = ProjTree::new();
        tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(a)),
            Some(Role(2)),
        );
        tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(b)),
            Some(Role(3)),
        );
        let out = run(&tree, &mut tags, FIG4_DOC);
        assert_eq!(
            out,
            vec![
                ("/a".to_string(), true, "{r2}".to_string()),
                ("/a/a".to_string(), true, "{r2}".to_string()),
                ("/a/a/b".to_string(), true, "{r3}".to_string()),
                ("/a/b".to_string(), true, "{r3}".to_string()),
            ]
        );
    }

    /// Paper Example 2: projecting with tree {/a/b, /a//b} (Fig. 5(a)),
    /// node n2 (= second `a` at path /a/a) matches nothing but is preserved
    /// by condition (2): v2 has child ./b, v5 has child .//b.
    #[test]
    fn example2_condition_two() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut tree = ProjTree::new();
        let v2 = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), None);
        let v3 = tree.add_child(v2, PStep::child(PTest::Tag(b)), Some(Role(1)));
        tree.add_child(v3, PStep::dos_node(), Some(Role(10)));
        let v5 = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), None);
        let v6 = tree.add_child(v5, PStep::descendant(PTest::Tag(b)), Some(Role(2)));
        tree.add_child(v6, PStep::dos_node(), Some(Role(20)));

        let out = run(&tree, &mut tags, FIG4_DOC);
        // /a matches v2,v5 (roleless variable-ish nodes here) — buffered?
        // v2/v5 carry no roles in Fig. 5; they match, so condition (1) holds.
        assert_eq!(out[0].0, "/a");
        assert!(out[0].1);
        // /a/a matches nothing, but is structurally preserved.
        assert_eq!(out[1], ("/a/a".to_string(), true, "{}".to_string()));
        // /a/a/b matches //b (+ its dos self-closure r20).
        assert_eq!(out[2], ("/a/a/b".to_string(), true, "{r2,r20}".to_string()));
        // /a/b matches both ./b and //b (+ both dos closures).
        assert_eq!(
            out[3],
            ("/a/b".to_string(), true, "{r1,r2,r10,r20}".to_string())
        );
    }

    /// Without a competing child:: edge, unmatched intermediates are skipped.
    #[test]
    fn no_structural_preservation_without_child_edges() {
        let mut tags = TagInterner::new();
        let b = tags.intern("b");
        tags.intern("a");
        let mut tree = ProjTree::new();
        tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(b)),
            Some(Role(1)),
        );
        let out = run(&tree, &mut tags, FIG4_DOC);
        assert_eq!(out[0], ("/a".to_string(), false, "{}".to_string()));
        assert_eq!(out[1], ("/a/a".to_string(), false, "{}".to_string()));
        assert!(out[2].1);
        assert!(out[3].1);
    }

    /// `[position()=1]` keeps only the first witness *per origin instance*.
    #[test]
    fn positional_first_child() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let price = tags.intern("price");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(x)),
            Some(Role(1)),
        );
        tree.add_child(
            vx,
            PStep::with_pred(PAxis::Child, PTest::Tag(price), Pred::First),
            Some(Role(4)),
        );
        let doc = "<x><price>1</price><price>2</price></x>";
        let out = run(&tree, &mut tags, doc);
        assert_eq!(out[0].2, "{r1}");
        assert_eq!(out[1], ("/x/price".to_string(), true, "{r4}".to_string()));
        // Second price: no match, not buffered.
        assert_eq!(out[3], ("/x/price".to_string(), false, "{}".to_string()));
    }

    /// Positional firing is per ancestor instance: each `x` gets its own
    /// first price.
    #[test]
    fn positional_resets_per_instance() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let price = tags.intern("price");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(x)),
            Some(Role(1)),
        );
        tree.add_child(
            vx,
            PStep::with_pred(PAxis::Child, PTest::Tag(price), Pred::First),
            Some(Role(4)),
        );
        let doc = "<r><x><price>1</price></x><x><price>2</price></x></r>";
        let out = run(&tree, &mut tags, doc);
        let buffered_prices: Vec<_> = out
            .iter()
            .filter(|(p, b, _)| p == "/r/x/price" && *b)
            .collect();
        assert_eq!(buffered_prices.len(), 2);
    }

    /// Positional firing with descendant axis: first witness in the whole
    /// subtree of the origin instance.
    #[test]
    fn positional_descendant_first() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let k = tags.intern("k");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(x)), Some(Role(1)));
        tree.add_child(
            vx,
            PStep::with_pred(PAxis::Descendant, PTest::Tag(k), Pred::First),
            Some(Role(2)),
        );
        let doc = "<x><d><k>deep</k></d><k>shallow</k></x>";
        let out = run(&tree, &mut tags, doc);
        // The deep k comes first in document order and is the only witness.
        let ks: Vec<_> = out.iter().filter(|(p, _, _)| p.ends_with("/k")).collect();
        assert!(ks[0].1, "first k (deep) buffered");
        assert!(!ks[1].1, "second k not buffered");
    }

    /// Text node matching via `text()` and `dos::node()`.
    #[test]
    fn text_matching() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(x)), Some(Role(1)));
        tree.add_child(vx, PStep::new(PAxis::Child, PTest::Text), Some(Role(2)));
        let out = run(&tree, &mut tags, "<x>hi<y>inner</y></x>");
        assert_eq!(out[1], ("/x/text()".to_string(), true, "{r2}".to_string()));
        // Text inside y matches nothing (child::text() only reaches x's own
        // text children).
        assert!(!out[3].1);
    }

    /// dos::node() buffers whole subtrees, assigning the role everywhere.
    #[test]
    fn dos_buffers_subtree_with_roles() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(x)), Some(Role(1)));
        tree.add_child(vx, PStep::dos_node(), Some(Role(5)));
        let out = run(&tree, &mut tags, "<x>t<y><z>u</z></y></x>");
        assert_eq!(out[0].2, "{r1,r5}", "x itself gets r5 via self-closure");
        for (p, b, r) in &out[1..] {
            assert!(*b, "{p} buffered");
            assert_eq!(r, "{r5}", "{p} carries r5");
        }
    }

    /// Aggregate roles: only the subtree root receives the role instance.
    #[test]
    fn aggregate_role_only_at_root() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(x)), Some(Role(1)));
        let dos = tree.add_child(vx, PStep::dos_node(), Some(Role(5)));
        tree.set_aggregate(dos);
        let out = run(&tree, &mut tags, "<x>t<y><z>u</z></y></x>");
        assert_eq!(out[0].2, "{r1,r5}");
        for (p, b, r) in &out[1..] {
            assert!(*b, "{p} still buffered");
            assert_eq!(r, "{}", "{p} carries no explicit role under aggregation");
        }
    }

    /// DFA mode and NFA mode agree on a mixed workload (differential).
    #[test]
    fn dfa_nfa_agree() {
        let mut tags = TagInterner::new();
        let tree = fig4b_tree(&mut tags);
        assert!(!tree.has_positional());
        // Force NFA by wrapping: build an identical tree and compare both
        // matchers manually over the same token walk.
        let doc = "<a><a><b><b></b></b></a><b></b><c><b></b></c></a>";
        let dfa_out = run(&tree, &mut tags, doc);
        let nfa_out = run_forced_nfa(&tree, &mut tags, doc);
        assert_eq!(dfa_out, nfa_out);
    }

    /// Drives the NFA path directly (bypassing the has_positional check).
    fn run_forced_nfa(
        tree: &ProjTree,
        tags: &mut TagInterner,
        doc: &str,
    ) -> Vec<(String, bool, String)> {
        let mut lexer = XmlLexer::new(doc.as_bytes(), tags);
        let tokens = lexer.tokenize_all().unwrap();
        let mut m = StreamMatcher::new_forced_nfa(tree);
        let mut out = Vec::new();
        let mut path: Vec<String> = Vec::new();
        for t in &tokens {
            match t {
                XmlToken::Open(tag) => {
                    path.push(tags.name(*tag).to_string());
                    let o = m.open(*tag);
                    let rs: RoleSet = o.roles.iter().copied().collect();
                    out.push((format!("/{}", path.join("/")), o.buffer, rs.to_string()));
                }
                XmlToken::Close(_) => {
                    m.close();
                    path.pop();
                }
                XmlToken::Text(_) => {
                    let o = m.text();
                    let rs: RoleSet = o.roles.iter().copied().collect();
                    out.push((
                        format!("/{}/text()", path.join("/")),
                        o.buffer,
                        rs.to_string(),
                    ));
                }
            }
        }
        out
    }

    /// Dead-subtree detection lets the preprojector skip.
    #[test]
    fn dead_subtree_detection() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let c = tags.intern("c");
        let mut tree = ProjTree::new();
        let va = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), Some(Role(1)));
        tree.add_child(va, PStep::child(PTest::Tag(b)), Some(Role(2)));
        let mut m = StreamMatcher::new(&tree);
        assert!(!m.is_dead());
        m.open(a);
        assert!(!m.is_dead());
        m.open(c); // nothing can match inside /a/c
        assert!(m.is_dead());
        m.close();
        m.open(b);
        assert!(m.is_dead(), "below /a/b nothing can match either");
        m.close();
        m.close();
    }

    /// Positional firing with origin multiplicity: //a//b/c\[1\] over
    /// a{a{b{c,c}}} — b matches with multiplicity 2, so the first c gets
    /// the role twice and one signOff execution removes both instances.
    #[test]
    fn positional_with_origin_multiplicity() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let c = tags.intern("c");
        let mut tree = ProjTree::new();
        let va = tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(a)),
            Some(Role(0)),
        );
        let vb = tree.add_child(va, PStep::descendant(PTest::Tag(b)), Some(Role(1)));
        tree.add_child(
            vb,
            PStep::with_pred(PAxis::Child, PTest::Tag(c), Pred::First),
            Some(Role(2)),
        );
        let out = run(&tree, &mut tags, "<a><a><b><c></c><c></c></b></a></a>");
        assert_eq!(out[2], ("/a/a/b".to_string(), true, "{r1,r1}".to_string()));
        assert_eq!(
            out[3],
            ("/a/a/b/c".to_string(), true, "{r2,r2}".to_string()),
            "first witness carries the origin multiplicity"
        );
        assert_eq!(out[4], ("/a/a/b/c".to_string(), false, "{}".to_string()));
    }

    /// A path used by the intro example: /bib/*/price\[1\].
    #[test]
    fn star_child_matching() {
        let mut tags = TagInterner::new();
        let bib = tags.intern("bib");
        tags.intern("book");
        let mut tree = ProjTree::new();
        let vb = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(bib)), Some(Role(2)));
        tree.add_child(vb, PStep::child(PTest::Star), Some(Role(3)));
        let out = run(&tree, &mut tags, "<bib><book></book><cd></cd></bib>");
        assert_eq!(out[1].2, "{r3}");
        assert_eq!(out[2].2, "{r3}");
    }

    /// RelPath helper used by query compilation exercises chains.
    #[test]
    fn chain_terminal_role_via_self_closure() {
        let mut tags = TagInterner::new();
        let book = tags.intern("book");
        let title = tags.intern("title");
        let mut tree = ProjTree::new();
        let vb = tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(book)),
            Some(Role(6)),
        );
        let p = RelPath::single(PStep::child(PTest::Tag(title))).then(PStep::dos_node());
        tree.add_path(vb, &p.steps, Some(Role(7)));
        let out = run(
            &tree,
            &mut tags,
            "<book><title>T<b>old</b></title><author></author></book>",
        );
        assert_eq!(out[0].2, "{r6}");
        assert_eq!(out[1].2, "{r7}", "title matched via dos self-closure");
        assert_eq!(out[2].2, "{r7}", "title text via dos descent");
        assert_eq!(out[3].2, "{r7}", "b via dos descent");
        assert_eq!(
            out[5],
            ("/book/author".to_string(), false, "{}".to_string())
        );
    }
}
