//! Offline stand-in for the `proptest` crate.
//!
//! Supports exactly the macro surface this workspace uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(96))]
//!
//!     #[test]
//!     fn my_property(a in 0u64..1000, b in 0u64..1000) { ... }
//! }
//! ```
//!
//! Each property becomes an ordinary `#[test]` that runs `cases`
//! iterations with inputs sampled uniformly from the given ranges, using
//! a generator seeded deterministically from the test's name (stable
//! across runs, so failures are reproducible). There is no shrinking: on
//! failure the assertion message carries the concrete inputs, which the
//! properties in this repository already format into their panics.

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Run configuration (`with_cases` is the only knob used).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Something inputs can be drawn from (integer ranges, here).
pub trait Strategy {
    type Value;
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }
    )*};
}

impl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut __proptest_rng);)*
                    let _ = __proptest_case;
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

// Re-export so `use rand::...` keeps working inside property bodies that
// only depend on proptest (none currently, but cheap).
pub use rand as rand_shim;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sampled_in_bounds(a in 0u64..100, b in 5u64..10) {
            prop_assert!(a < 100);
            prop_assert!((5..10).contains(&b));
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn default_config_used(x in 0u64..7) {
            prop_assert!(x < 7);
        }
    }

    #[test]
    fn per_test_seed_is_stable() {
        use rand::RngCore;
        let mut a = super::rng_for("x::y");
        let mut b = super::rng_for("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
