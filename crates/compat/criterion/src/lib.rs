//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API used by this workspace's
//! benches — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId` — with
//! plain wall-clock measurement: a warm-up iteration followed by
//! `sample_size` timed iterations, reporting the median and, when a
//! throughput is declared, MB/s. No statistical machinery, no HTML
//! reports; the numbers are honest but coarse.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared per-iteration work, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark id (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Runs the closure under timing. Passed to bench closures as `b`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured
    /// calls. The return value is black-boxed to keep the work alive.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&label, &b.samples, self.throughput);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&label, &b.samples, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let mbps = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mbps:8.1} MB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  {eps:8.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{label:<48} median {median:>12.3?}{rate}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// True when invoked by `cargo test` (`--test` flag): run each bench
    /// once to check it works, skip timing loops.
    pub test_mode: bool,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = if self.test_mode { 1 } else { 10 };
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.test_mode { 1 } else { 10 },
        };
        f(&mut b);
        report(&id.to_string(), &b.samples, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let test_mode = std::env::args().any(|a| a == "--test");
            let mut c = $crate::Criterion { test_mode };
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", "input"), &41, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        benches(&mut c);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(7), 7);
    }
}
