//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the (small) `rand` API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling helpers
//! `random_range` / `random_bool`. The generator is xoshiro256** seeded
//! via SplitMix64 — deterministic per seed, which is all the test suites
//! and the XMark generator require. Distribution quality caveats that
//! matter for cryptography or statistics do not apply here.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only constructor used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from a (half-open or inclusive) integer range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, as rand itself does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Integer types [`RngExt::random_range`] can sample. Kept as a separate
/// trait (with blanket [`SampleRange`] impls over it) so that type
/// inference resolves `random_range(1..=5)` to `i32` via integer fallback,
/// exactly as with the real rand crate's `SampleUniform`.
pub trait SampleUniform: Copy {
    /// Uniform value in `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_in<R: RngCore>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_in(start, end, true, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for rand's
    /// `StdRng`; unrelated algorithm, same role).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=12);
            assert!((1..=12).contains(&y));
            let z: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads {heads}");
    }
}
