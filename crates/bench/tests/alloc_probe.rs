//! Acceptance check for the zero-allocation lexer hot path. Only
//! meaningful (and only compiled) with the counting allocator installed:
//!
//! ```text
//! cargo test -p gcx-bench --features count-allocs --test alloc_probe
//! ```
#![cfg(feature = "count-allocs")]

use gcx_bench::{lexer_steady_probe, xmark_doc};

/// Once a document's tag vocabulary is interned and the lexer's scratch
/// buffers have reached their high-water capacity, lexing an identical
/// stream performs zero heap allocations.
#[test]
fn lexer_steady_state_is_allocation_free() {
    let doc = xmark_doc(0.5, 42);
    let probe = lexer_steady_probe(&doc).expect("probe runs");
    assert!(probe.events > 10_000, "probe too small: {}", probe.events);
    assert_eq!(
        probe.allocations, 0,
        "steady-state lexing allocated {} times over {} events",
        probe.allocations, probe.events
    );
}
