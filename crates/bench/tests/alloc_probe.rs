//! Acceptance check for the zero-allocation lexer hot path. Only
//! meaningful (and only compiled) with the counting allocator installed:
//!
//! ```text
//! cargo test -p gcx-bench --features count-allocs --test alloc_probe
//! ```
#![cfg(feature = "count-allocs")]

use gcx_bench::{alloc_count, lexer_steady_probe, xmark_doc, NullSink};

/// Once a document's tag vocabulary is interned and the lexer's scratch
/// buffers have reached their high-water capacity, lexing an identical
/// stream performs zero heap allocations.
#[test]
fn lexer_steady_state_is_allocation_free() {
    let doc = xmark_doc(0.5, 42);
    let probe = lexer_steady_probe(&doc).expect("probe runs");
    assert!(probe.events > 10_000, "probe too small: {}", probe.events);
    assert_eq!(
        probe.allocations, 0,
        "steady-state lexing allocated {} times over {} events",
        probe.allocations, probe.events
    );
}

/// Q13 buffers whole description subtrees (dos::node() projection) — the
/// last known allocation pocket. After arena-backed DFA states, the
/// inline role-set storage, the borrowed (not cloned) query body and the
/// arena-backed tag interner, a cold Q13 run performs only a few dozen
/// allocator round-trips total; the 0.005/event budget at a 16 MB
/// document (≈ 15k materialized events — skip-mode lexing consumes the
/// rest as raw bytes) allows ~77, roughly 2× the measured figure.
#[test]
fn q13_allocs_per_event_bounded() {
    let doc = xmark_doc(16.0, 42);
    let query = gcx_xmark::by_name("Q13").expect("Q13 exists");
    let mut tags = gcx_xml::TagInterner::new();
    let compiled = gcx_query::compile_default(query, &mut tags).expect("compile");
    let before = alloc_count::allocations();
    let mut sink = NullSink::default();
    let report = gcx_core::run_gcx(&compiled, &mut tags, &doc[..], &mut sink).expect("run");
    let allocs = alloc_count::allocations() - before;
    let events = report.tokens_read.max(1);
    let ratio = allocs as f64 / events as f64;
    assert!(
        ratio <= 0.005,
        "Q13 allocated {allocs} times over {events} events ({ratio:.5}/event; budget 0.005)"
    );
}

/// Recording into the observability primitives must be allocation-free:
/// they sit on the engine hot path (sampled stage timers) and the
/// request path, where the 0.005 allocs/event budget leaves no room.
/// Snapshotting is also alloc-free (fixed-size arrays on the stack).
#[test]
fn histogram_recording_is_allocation_free() {
    use std::time::Duration;
    let hist = gcx_obs::LatencyHistogram::new();
    let counter = gcx_obs::Counter::new();
    // Warm up any lazy allocator state.
    hist.record(Duration::from_micros(3));
    let before = alloc_count::allocations();
    for i in 0..10_000u64 {
        hist.record_nanos(i * 37 + 1);
        counter.inc();
    }
    let snap = hist.snapshot();
    let allocs = alloc_count::allocations() - before;
    assert_eq!(
        allocs, 0,
        "recording 10k histogram samples allocated {allocs} times"
    );
    assert_eq!(snap.count, 10_001);
    assert!(snap.p50() > 0);
}

/// Q20 runs the matcher in NFA mode (positional predicate) — the pooled
/// frames, matcher-resident scratch and evaluator scratch must keep the
/// whole engine's amortized allocation rate under 0.05 allocations per
/// materialized event. The per-run setup (lexer buffer, interner, frame
/// pool growth to peak depth, scratch high-water marks) is amortized
/// over the run, which is exactly what the bound budgets for.
#[test]
fn q20_allocs_per_event_bounded() {
    let doc = xmark_doc(1.0, 42);
    let query = gcx_xmark::by_name("Q20").expect("Q20 exists");
    let mut tags = gcx_xml::TagInterner::new();
    let compiled = gcx_query::compile_default(query, &mut tags).expect("compile");
    let before = alloc_count::allocations();
    let mut sink = NullSink::default();
    let report = gcx_core::run_gcx(&compiled, &mut tags, &doc[..], &mut sink).expect("run");
    let allocs = alloc_count::allocations() - before;
    assert!(report.dfa_states == 0, "Q20 must exercise NFA mode");
    let events = report.tokens_read.max(1);
    let ratio = allocs as f64 / events as f64;
    assert!(
        ratio <= 0.05,
        "Q20 allocated {allocs} times over {events} events ({ratio:.4}/event; budget 0.05)"
    );
}
