//! Forced-NFA vs DFA differential over the full XMark corpus.
//!
//! The two matcher modes implement the same paper semantics (§2); the
//! pooled-frame NFA rework must not change a single verdict. Every XMark
//! query's projection tree is driven over a generated document twice —
//! once through `StreamMatcher::new` (lazy DFA where the tree permits
//! it) and once through `StreamMatcher::new_forced_nfa` (the pooled
//! frame simulation) — comparing the buffering verdict, the role
//! multiset, the structural flag and the dead-subtree verdict at every
//! event. For Q20 (positional) both sides run NFA mode; that leg still
//! pins the pooled matcher against itself across pool reuse.

use gcx_projection::{Role, StreamMatcher};
use gcx_query::compile_default;
use gcx_xml::{TagInterner, XmlLexer, XmlToken};

fn sorted(roles: &[Role]) -> Vec<Role> {
    let mut v = roles.to_vec();
    v.sort();
    v
}

#[test]
fn forced_nfa_agrees_with_dfa_over_xmark_corpus() {
    let doc = gcx_bench::xmark_doc(0.3, 42);
    for (name, query) in gcx_xmark::ALL {
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).expect("compile");
        let tree = &compiled.projection.tree;
        let mut dfa = StreamMatcher::new(tree);
        let mut nfa = StreamMatcher::new_forced_nfa(tree);
        assert!(nfa.dfa_states() == 0, "{name}: forced NFA has no DFA");
        assert_eq!(
            sorted(dfa.root_roles()),
            sorted(nfa.root_roles()),
            "{name}: root roles"
        );
        let mut lexer = XmlLexer::new(&doc[..], &mut tags);
        let mut events = 0u64;
        while let Some(tok) = lexer.next_token().expect("lex") {
            events += 1;
            match tok {
                XmlToken::Open(tag) => {
                    let a = dfa.open(tag);
                    let (ab, ast, ar) = (a.buffer, a.structural, sorted(a.roles));
                    let b = nfa.open(tag);
                    assert_eq!(ab, b.buffer, "{name}: buffer verdict at event {events}");
                    assert_eq!(ast, b.structural, "{name}: structural at event {events}");
                    assert_eq!(ar, sorted(b.roles), "{name}: roles at event {events}");
                    assert_eq!(
                        dfa.is_dead(),
                        nfa.is_dead(),
                        "{name}: dead verdict at event {events}"
                    );
                }
                XmlToken::Close(_) => {
                    dfa.close();
                    nfa.close();
                }
                XmlToken::Text(_) => {
                    let a = dfa.text();
                    let (ab, ar) = (a.buffer, sorted(a.roles));
                    let b = nfa.text();
                    assert_eq!(ab, b.buffer, "{name}: text verdict at event {events}");
                    assert_eq!(ar, sorted(b.roles), "{name}: text roles at event {events}");
                }
            }
        }
        assert!(
            events > 10_000,
            "{name}: corpus too small ({events} events)"
        );
    }
}
