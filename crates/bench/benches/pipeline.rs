//! Microbenchmarks of the pipeline components: query compilation, the
//! XML lexer, stream preprojection (lazy DFA vs per-instance NFA), and
//! the buffer's role/GC operations — the costs behind the §5 claim that
//! "the overhead imposed by the buffer cleanup algorithm is small".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcx_bench::xmark_doc;
use gcx_buffer::BufferTree;
use gcx_projection::{ProjTree, Role, StreamMatcher};
use gcx_query::{compile, CompileOptions};
use gcx_xml::{TagInterner, XmlLexer, XmlToken};

fn compile_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for (qname, query) in gcx_xmark::ALL {
        group.bench_function(*qname, |b| {
            b.iter(|| {
                let mut tags = TagInterner::new();
                compile(query, &mut tags, CompileOptions::default()).expect("compile")
            })
        });
    }
    group.finish();
}

fn lexer_throughput(c: &mut Criterion) {
    let doc = xmark_doc(1.0, 42);
    let mut group = c.benchmark_group("lexer");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);
    group.bench_function("tokenize-1MB", |b| {
        b.iter(|| {
            let mut tags = TagInterner::new();
            let mut lexer = XmlLexer::new(&doc[..], &mut tags);
            let mut count = 0u64;
            while let Some(t) = lexer.next_token().expect("lex") {
                if matches!(t, XmlToken::Open(_)) {
                    count += 1;
                }
            }
            count
        })
    });
    group.finish();
}

fn preprojection(c: &mut Criterion) {
    let doc = xmark_doc(1.0, 42);
    let mut group = c.benchmark_group("preproject");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);
    for (qname, query) in [("Q1", gcx_xmark::Q1), ("Q6", gcx_xmark::Q6)] {
        group.bench_with_input(BenchmarkId::new("match", qname), &doc, |b, doc| {
            let mut tags = TagInterner::new();
            let compiled = compile(query, &mut tags, CompileOptions::default()).unwrap();
            b.iter(|| {
                let mut tags2 = tags.clone();
                let mut lexer = XmlLexer::new(&doc[..], &mut tags2);
                let mut matcher = StreamMatcher::new(&compiled.projection.tree);
                let mut buffered = 0u64;
                while let Some(t) = lexer.next_token().expect("lex") {
                    match t {
                        XmlToken::Open(tag) => {
                            if matcher.open(tag).buffer {
                                buffered += 1;
                            }
                        }
                        XmlToken::Close(_) => matcher.close(),
                        XmlToken::Text(_) => {
                            if matcher.text().buffer {
                                buffered += 1;
                            }
                        }
                    }
                }
                buffered
            })
        });
    }
    group.finish();
}

/// Role add/remove + localized GC churn: a deep path of nodes receiving
/// and losing roles, the §5 hot loop.
fn buffer_gc_churn(c: &mut Criterion) {
    let mut tags = TagInterner::new();
    let x = tags.intern("x");
    c.bench_function("buffer/role-churn-10k", |b| {
        b.iter(|| {
            let mut buf = BufferTree::new(2, &[]);
            for _ in 0..10_000 {
                let n = buf.open_element(BufferTree::ROOT, x).unwrap();
                buf.add_role(n, Role(0));
                buf.finish(n);
                buf.sign_off(n, Role(0), 1).expect("signoff");
            }
            buf.stats().nodes_purged
        })
    });
    c.bench_function("buffer/deep-subtree-purge", |b| {
        b.iter(|| {
            let mut buf = BufferTree::new(2, &[]);
            let mut chain = Vec::new();
            let mut parent = BufferTree::ROOT;
            for _ in 0..500 {
                let n = buf.open_element(parent, x).unwrap();
                chain.push(n);
                parent = n;
            }
            buf.add_role(*chain.last().unwrap(), Role(0));
            for &n in chain.iter().rev() {
                buf.finish(n);
            }
            buf.sign_off(*chain.last().unwrap(), Role(0), 1)
                .expect("signoff");
            buf.stats().live_nodes
        })
    });
}

/// Lazy-DFA construction and reuse over repetitive structure.
fn dfa_laziness(c: &mut Criterion) {
    let mut tags = TagInterner::new();
    let site = tags.intern("site");
    let people = tags.intern("people");
    let person = tags.intern("person");
    let id = tags.intern("id");
    let mut tree = ProjTree::new();
    use gcx_projection::{PStep, PTest};
    let v1 = tree.add_child(
        ProjTree::ROOT,
        PStep::child(PTest::Tag(site)),
        Some(Role(0)),
    );
    let v2 = tree.add_child(v1, PStep::child(PTest::Tag(people)), Some(Role(1)));
    let v3 = tree.add_child(v2, PStep::descendant(PTest::Tag(person)), Some(Role(2)));
    tree.add_child(v3, PStep::child(PTest::Tag(id)), Some(Role(3)));
    c.bench_function("dfa/repetitive-10k-persons", |b| {
        b.iter(|| {
            let mut m = StreamMatcher::new(&tree);
            m.open(site);
            m.open(people);
            for _ in 0..10_000 {
                m.open(person);
                m.open(id);
                m.close();
                m.close();
            }
            m.close();
            m.close();
            m.dfa_states()
        })
    });
}

criterion_group!(
    benches,
    compile_queries,
    lexer_throughput,
    preprojection,
    buffer_gc_churn,
    dfa_laziness
);
criterion_main!(benches);
