//! Criterion benches regenerating the *time* dimension of paper Table 1:
//! every benchmark query × engine over XMark documents, plus a size sweep
//! for the streamable queries (Q1's row of the table).
//!
//! Memory (the other Table 1 dimension) is reported by the `table1`
//! binary, since Criterion measures time only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcx_bench::{run_engine, xmark_doc, Engine};
use gcx_query::CompileOptions;

/// Table 1, all queries at a fixed small size, all engines.
fn table1_queries(c: &mut Criterion) {
    let mb = 0.5;
    let doc = xmark_doc(mb, 42);
    let mut group = c.benchmark_group("table1");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);
    for (qname, query) in gcx_xmark::ALL {
        for engine in Engine::ALL {
            // The quadratic join is benchmarked separately at tiny scale.
            if *qname == "Q8" && engine != Engine::Dom {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(qname.to_string(), engine.label()),
                &doc,
                |b, doc| {
                    b.iter(|| {
                        run_engine(engine, query, doc, CompileOptions::default())
                            .expect("run")
                            .report
                            .output_bytes
                    })
                },
            );
        }
    }
    group.finish();
}

/// Q8 (join) at reduced scale — quadratic, like the paper's nested-loop
/// prototype.
fn q8_join(c: &mut Criterion) {
    let doc = xmark_doc(0.1, 42);
    let mut group = c.benchmark_group("q8-join");
    group.sample_size(10);
    for engine in Engine::ALL {
        group.bench_with_input(BenchmarkId::new("0.1MB", engine.label()), &doc, |b, doc| {
            b.iter(|| {
                run_engine(engine, gcx_xmark::Q8, doc, CompileOptions::default())
                    .expect("run")
                    .report
                    .output_bytes
            })
        });
    }
    group.finish();
}

/// Scaling sweep (the rows of Table 1): Q1 over growing documents for the
/// streaming engines; time should scale linearly, memory (asserted in the
/// harness) stays flat for GCX.
fn size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("q1-size-sweep");
    group.sample_size(10);
    for mb in [0.25, 0.5, 1.0, 2.0] {
        let doc = xmark_doc(mb, 42);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        for engine in [Engine::Gcx, Engine::Dom] {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), format!("{mb}MB")),
                &doc,
                |b, doc| {
                    b.iter(|| {
                        run_engine(engine, gcx_xmark::Q1, doc, CompileOptions::default())
                            .expect("run")
                            .report
                            .output_bytes
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, table1_queries, q8_join, size_sweep);
criterion_main!(benches);
