//! Emits the machine-readable streaming benchmark report
//! (`BENCH_streaming.json`): per XMark query, throughput in MB/s and
//! events/s, peak buffer nodes, and — when built with
//! `--features count-allocs` — allocations-per-event, plus the
//! steady-state lexer allocation probe.
//!
//! The reproducible command (documented in the README):
//!
//! ```text
//! cargo run --release -p gcx-bench --features count-allocs \
//!     --bin bench_report -- --out BENCH_streaming.json
//! ```
//!
//! Options: `--sizes 8` (MB per document), `--queries Q1,Q6,Q13,Q20`,
//! `--engines gcx`, `--repeat 3`, `--seed 42`, `--quick` (1 MB, one
//! repeat — the CI smoke configuration), `--no-serve` (skip the loopback
//! HTTP scenario: Q1/Q6 streamed through a gcx-net server with 1→8
//! concurrent clients, reported as engine `http-cN`).

use gcx_bench::{
    alloc_count, arg_value, lexer_steady_probe, measure_record, report, xmark_doc, Engine,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: Vec<f64> = arg_value(&args, "--sizes")
        .unwrap_or_else(|| if quick { "1" } else { "8" }.into())
        .split(',')
        .map(|s| s.trim().parse::<f64>().expect("size in MB"))
        .collect();
    let queries: Vec<String> = arg_value(&args, "--queries")
        .unwrap_or_else(|| "Q1,Q6,Q13,Q20".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let engines: Vec<Engine> = arg_value(&args, "--engines")
        .unwrap_or_else(|| "gcx".into())
        .split(',')
        .map(|s| Engine::parse(s.trim()).expect("engine name"))
        .collect();
    let seed: u64 = arg_value(&args, "--seed")
        .unwrap_or_else(|| "42".into())
        .parse()
        .expect("seed");
    let repeat: usize = arg_value(&args, "--repeat")
        .unwrap_or_else(|| if quick { "1" } else { "3" }.into())
        .parse()
        .expect("repeat count");
    let out =
        PathBuf::from(arg_value(&args, "--out").unwrap_or_else(|| "BENCH_streaming.json".into()));

    if !alloc_count::enabled() {
        eprintln!(
            "note: built without --features count-allocs; \
             allocation metrics will be null"
        );
    }

    let mut records = Vec::new();
    for &mb in &sizes {
        let doc = xmark_doc(mb, seed);
        for qname in &queries {
            let Some(query) = gcx_xmark::by_name(qname) else {
                eprintln!("unknown query {qname}; skipping");
                continue;
            };
            for &engine in &engines {
                match measure_record(engine, qname, query, &doc, mb, repeat) {
                    Ok(r) => {
                        eprintln!(
                            "{qname} {mb}MB {}: {:.3}s  {:.1} MB/s  {:.2}M events/s  peak {} nodes{}",
                            engine.label(),
                            r.seconds,
                            r.mb_per_sec(),
                            r.events_per_sec() / 1e6,
                            r.peak_nodes,
                            match r.allocs_per_event() {
                                Some(a) => format!("  {a:.4} allocs/event"),
                                None => String::new(),
                            }
                        );
                        records.push(r);
                    }
                    Err(e) => eprintln!("{qname} {mb}MB {}: error: {e}", engine.label()),
                }
            }
        }
    }

    // Skip-heavy synthetic scenario: ~99 % of the document is statically
    // dead, so the row measures the raw `skip_subtree` scan ceiling
    // (tracked via the `skip_mb_per_sec` field).
    {
        let skip_mb = sizes.iter().cloned().fold(0.0f64, f64::max).max(0.25);
        let doc = gcx_bench::skipheavy_doc(skip_mb);
        match measure_record(
            Engine::Gcx,
            "SYNTH-SKIP",
            gcx_bench::SKIPHEAVY_QUERY,
            &doc,
            skip_mb,
            repeat,
        ) {
            Ok(r) => {
                eprintln!(
                    "SYNTH-SKIP {skip_mb}MB GCX: {:.3}s  {:.1} MB/s  skip {:.1} MB/s ({:.1}% skipped)",
                    r.seconds,
                    r.mb_per_sec(),
                    r.skip_mb_per_sec(),
                    r.skip_ratio() * 100.0,
                );
                records.push(r);
            }
            Err(e) => eprintln!("SYNTH-SKIP {skip_mb}MB GCX: error: {e}"),
        }
    }

    // Loopback HTTP scenario: wire throughput and client scaling for the
    // streaming front-end, appended under the same schema.
    if !args.iter().any(|a| a == "--no-serve") {
        let serve_mb = sizes.iter().cloned().fold(0.0f64, f64::max).max(0.25);
        let doc = xmark_doc(serve_mb, seed);
        for qname in ["Q1", "Q6"] {
            let Some(query) = gcx_xmark::by_name(qname) else {
                continue;
            };
            for clients in [1usize, 2, 4, 8] {
                match gcx_bench::serve::measure_serve_record(qname, query, &doc, serve_mb, clients)
                {
                    Ok(r) => {
                        eprintln!(
                            "{qname} {serve_mb}MB {}: {:.3}s  {:.1} MB/s aggregate",
                            r.engine,
                            r.seconds,
                            r.mb_per_sec(),
                        );
                        records.push(r);
                    }
                    Err(e) => eprintln!("{qname} serve c{clients}: error: {e}"),
                }
            }
        }
        // Small-request scenario: many short queries per client, with
        // and without connection reuse — the keep-alive payoff in one
        // back-to-back pair per client count. The document is truly
        // small (single-digit KB) so per-request connection overhead is
        // the measured quantity, not evaluation.
        let small_doc = xmark_doc(0.001, seed);
        let small_requests = if quick { 50 } else { 200 };
        if let Some(query) = gcx_xmark::by_name("Q1") {
            let mut run_small = |clients: usize, requests: usize, reuse: bool| {
                match gcx_bench::serve::measure_keepalive_record(
                    "Q1", query, &small_doc, clients, requests, reuse,
                ) {
                    Ok(r) => {
                        eprintln!(
                            "Q1 {} B x{requests} {}: {:.3}s  {:.1} req/s aggregate{}",
                            small_doc.len(),
                            r.engine,
                            r.seconds,
                            (clients * requests) as f64 / r.seconds.max(1e-9),
                            match r.latency {
                                Some(l) => format!(
                                    "  p50 {:.3}ms p99 {:.3}ms ttfb-p50 {:.3}ms",
                                    l.p50_ms, l.p99_ms, l.ttfb_p50_ms
                                ),
                                None => String::new(),
                            },
                        );
                        records.push(r);
                    }
                    Err(e) => eprintln!("Q1 keepalive c{clients} reuse={reuse}: error: {e}"),
                }
            };
            for clients in [1usize, 8] {
                for reuse in [false, true] {
                    run_small(clients, small_requests, reuse);
                }
            }
            // Wide keep-alive rows: connection-count scaling of the
            // epoll readiness loop (hundreds of parked connections, two
            // workers, two evaluators). Keep-alive only — the close
            // variant at this width would measure client connect()
            // churn, not the server — and fewer requests per client so
            // the rows stay smoke-sized.
            run_small(64, if quick { 8 } else { 32 }, true);
            run_small(512, if quick { 2 } else { 8 }, true);
        }
    }

    // Idle-cost probe: with connections parked and no requests in
    // flight, the epoll readiness loop should burn ~zero CPU (recorded
    // as a report note rather than a throughput row).
    let mut notes = Vec::new();
    if !args.iter().any(|a| a == "--no-serve") {
        match gcx_bench::serve::measure_idle_cpu_note(64, std::time::Duration::from_secs(1)) {
            Ok(note) => {
                eprintln!("{note}");
                notes.push(note);
            }
            Err(e) => eprintln!("idle-cpu probe: error: {e}"),
        }
    }

    // Steady-state lexer probe over the largest configured document.
    let probe_mb = sizes.iter().cloned().fold(0.0f64, f64::max).max(0.25);
    let probe = if alloc_count::enabled() {
        let doc = xmark_doc(probe_mb, seed);
        match lexer_steady_probe(&doc) {
            Ok(p) => {
                eprintln!(
                    "lexer steady state: {} events, {} allocations ({} allocs/event)",
                    p.events,
                    p.allocations,
                    p.allocs_per_event()
                );
                Some(p)
            }
            Err(e) => {
                eprintln!("lexer probe failed: {e}");
                None
            }
        }
    } else {
        None
    };

    report::write_report(&out, seed, alloc_count::enabled(), &records, probe, &notes)
        .expect("write report");
    eprintln!("wrote {}", out.display());
}
