//! `net_client` — test client for the gcx-net front-end, used by the CI
//! `net-smoke` job and for manual poking.
//!
//! ```text
//! net_client gen   --mb 8 --seed 42 --out doc.xml     generate an XMark doc
//! net_client query --name Q1                          print a benchmark query
//! net_client post  --url http://127.0.0.1:8080/query?name=Q1 \
//!                  --input doc.xml [--chunk 65536]    stream a document, print result
//!                  [--repeat N --keepalive]           N requests over one connection
//!                  [--latency]                        per-request latency summary
//! net_client trace --url http://127.0.0.1:8080/trace  fetch + validate a trace
//!                  [--allow-empty]                    don't require spans
//! ```
//!
//! `trace` fetches the server's flight-recorder export (Chrome
//! trace-event JSON), checks every event carries `ph`/`pid`/`tid` (and
//! `ts` for non-metadata events), and — unless `--allow-empty` — fails
//! if the capture holds no engine-stage span or no buffer event with an
//! input byte offset. The CI net-smoke job runs it after the query
//! round to prove `GET /trace` is Perfetto-loadable and non-trivial.
//!
//! `post` uploads chunked while concurrently reading the streamed
//! response (a real streaming client), writes the result body to stdout
//! and a summary to stderr, and exits non-zero unless the status is 200.
//! With `--keepalive --repeat N` it instead sends N `Content-Length`
//! requests over **one persistent connection** (the CI keep-alive smoke
//! path), verifies all responses are identical, and prints one body;
//! `--latency` adds per-request `min/p50/p99/max` total-latency and TTFB
//! lines (milliseconds) to the stderr summary.

use gcx_bench::report::percentile;
use gcx_bench::{arg_value, xmark_doc};
use gcx_net::client;
use std::io::Write as _;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mode = if args.is_empty() {
        return Err("usage: net_client <gen|query|post> [options]".into());
    } else {
        args.remove(0)
    };
    match mode.as_str() {
        "gen" => {
            let mb: f64 = arg_value(&args, "--mb")
                .unwrap_or_else(|| "8".into())
                .parse()
                .map_err(|_| "invalid --mb")?;
            let seed: u64 = arg_value(&args, "--seed")
                .unwrap_or_else(|| "42".into())
                .parse()
                .map_err(|_| "invalid --seed")?;
            let out = arg_value(&args, "--out").ok_or("gen requires --out <FILE>")?;
            let doc = xmark_doc(mb, seed);
            std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("wrote {} ({} bytes)", out, doc.len());
            Ok(())
        }
        "query" => {
            let name = arg_value(&args, "--name").ok_or("query requires --name <NAME>")?;
            let text = gcx_xmark::by_name(&name).ok_or_else(|| format!("unknown query {name}"))?;
            println!("{text}");
            Ok(())
        }
        "post" => {
            let url = arg_value(&args, "--url").ok_or("post requires --url <URL>")?;
            let input = arg_value(&args, "--input").ok_or("post requires --input <FILE>")?;
            let chunk: usize = arg_value(&args, "--chunk")
                .unwrap_or_else(|| "65536".into())
                .parse()
                .map_err(|_| "invalid --chunk")?;
            let (addr, path) = split_url(&url)?;
            let doc = std::fs::read(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let input_len = doc.len();
            if args.iter().any(|a| a == "--keepalive") {
                let repeat: usize = arg_value(&args, "--repeat")
                    .unwrap_or_else(|| "1".into())
                    .parse()
                    .map_err(|_| "invalid --repeat")?;
                let repeat = repeat.max(1);
                let latency = args.iter().any(|a| a == "--latency");
                let mut conn = client::HttpClient::connect(addr.as_str())
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let start = std::time::Instant::now();
                let mut first_body: Option<Vec<u8>> = None;
                let mut lat_ms = Vec::with_capacity(repeat);
                let mut ttfb_ms = Vec::with_capacity(repeat);
                for i in 0..repeat {
                    let (resp, timing) = conn
                        .post_timed(&path, &doc)
                        .map_err(|e| format!("request {i} failed: {e}"))?;
                    if resp.status != 200 {
                        return Err(format!("request {i}: server returned {}", resp.status));
                    }
                    lat_ms.push(timing.total.as_secs_f64() * 1e3);
                    ttfb_ms.push(timing.ttfb.as_secs_f64() * 1e3);
                    match &first_body {
                        None => first_body = Some(resp.body),
                        Some(first) => {
                            if *first != resp.body {
                                return Err(format!("request {i}: response differs from first"));
                            }
                        }
                    }
                }
                let elapsed = start.elapsed().as_secs_f64();
                eprintln!(
                    "{repeat} keep-alive requests on one connection, {} bytes in each, \
                     {:.3}s ({:.1} req/s)",
                    input_len,
                    elapsed,
                    repeat as f64 / elapsed.max(1e-9),
                );
                if latency {
                    lat_ms.sort_unstable_by(f64::total_cmp);
                    ttfb_ms.sort_unstable_by(f64::total_cmp);
                    let line = |name: &str, s: &[f64]| {
                        eprintln!(
                            "{name}_ms min {:.3} p50 {:.3} p99 {:.3} max {:.3}",
                            s[0],
                            percentile(s, 0.50),
                            percentile(s, 0.99),
                            s[s.len() - 1],
                        );
                    };
                    line("latency", &lat_ms);
                    line("ttfb", &ttfb_ms);
                }
                std::io::stdout()
                    .write_all(&first_body.expect("repeat >= 1"))
                    .map_err(|e| e.to_string())?;
                return Ok(());
            }
            let chunks: Vec<Vec<u8>> = doc.chunks(chunk.max(1)).map(<[u8]>::to_vec).collect();
            let start = std::time::Instant::now();
            // An overloaded server sheds with 503 + Retry-After; honor it
            // a few times before giving up so load tests degrade politely.
            let mut resp = None;
            for attempt in 0..3 {
                let ps = client::PostStream::open(addr.as_str(), &path)
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let r = ps
                    .stream_and_finish(chunks.iter().cloned())
                    .map_err(|e| format!("request failed: {e}"))?;
                if r.status == 503 && attempt < 2 {
                    let wait: u64 = r
                        .header("retry-after")
                        .and_then(|v| v.trim().parse().ok())
                        .unwrap_or(1);
                    eprintln!("server overloaded (503), retrying in {wait}s");
                    std::thread::sleep(std::time::Duration::from_secs(wait));
                    continue;
                }
                resp = Some(r);
                break;
            }
            let resp = resp.expect("loop always breaks with a response");
            let elapsed = start.elapsed().as_secs_f64();
            eprintln!(
                "status {}: {} bytes in, {} bytes out, {:.3}s ({:.1} MB/s in)",
                resp.status,
                input_len,
                resp.body.len(),
                elapsed,
                input_len as f64 / (1024.0 * 1024.0) / elapsed.max(1e-9),
            );
            std::io::stdout()
                .write_all(&resp.body)
                .map_err(|e| e.to_string())?;
            if resp.status != 200 {
                return Err(format!("server returned {}", resp.status));
            }
            Ok(())
        }
        "trace" => {
            let url =
                arg_value(&args, "--url").unwrap_or_else(|| "http://127.0.0.1:8080/trace".into());
            let (addr, path) = split_url(&url)?;
            let resp = client::get(addr.as_str(), &path)
                .map_err(|e| format!("cannot fetch {url}: {e}"))?;
            if resp.status != 200 {
                return Err(format!("server returned {}", resp.status));
            }
            let body = resp.text();
            let report = validate_trace(&body)?;
            eprintln!(
                "trace: {} events ({} metadata, {} stage spans, {} buffer events, \
                 {} with byte offsets)",
                report.events,
                report.metadata,
                report.stage_spans,
                report.buffer_events,
                report.offset_args,
            );
            if !args.iter().any(|a| a == "--allow-empty") {
                if report.stage_spans == 0 {
                    return Err(
                        "trace holds no engine-stage span (lex/skip/match/buffer/emit/queue-wait)"
                            .into(),
                    );
                }
                if report.buffer_events == 0 {
                    return Err("trace holds no buffer event (node-buffered/sign-off/...)".into());
                }
                if report.offset_args == 0 {
                    return Err("no buffer event carries an input byte offset".into());
                }
            }
            std::io::stdout()
                .write_all(body.as_bytes())
                .map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown mode {other:?} (gen|query|post|trace)")),
    }
}

/// What [`validate_trace`] counted.
struct TraceReport {
    events: usize,
    metadata: usize,
    stage_spans: usize,
    buffer_events: usize,
    offset_args: usize,
}

/// Validates Chrome trace-event JSON shape without a JSON library: finds
/// the `traceEvents` array, splits it into event objects (brace-depth
/// scan that skips string contents), and requires `ph`/`pid`/`tid` on
/// every event plus `ts` on non-metadata events.
fn validate_trace(body: &str) -> Result<TraceReport, String> {
    const STAGES: [&str; 6] = ["queue-wait", "lex", "skip", "match", "buffer", "emit"];
    const BUFFER_EVENTS: [&str; 6] = [
        "node-buffered",
        "sign-off",
        "subtree-delete",
        "budget-reserve",
        "budget-reject",
        "high-water",
    ];
    let key = "\"traceEvents\":[";
    let start = body
        .find(key)
        .ok_or("no \"traceEvents\" array in response")?
        + key.len();
    let bytes = body.as_bytes();
    let mut report = TraceReport {
        events: 0,
        metadata: 0,
        stage_spans: 0,
        buffer_events: 0,
        offset_args: 0,
    };
    // Walk the array: depth 0 is between events, braces open an event.
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut event_start = 0usize;
    let mut i = start;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' => {
                    if depth == 0 {
                        event_start = i;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or("unbalanced braces in traceEvents")?;
                    if depth == 0 {
                        check_event(&body[event_start..=i], &STAGES, &BUFFER_EVENTS, &mut report)?;
                    }
                }
                b']' if depth == 0 => {
                    return Ok(report);
                }
                _ => {}
            }
        }
        i += 1;
    }
    Err("traceEvents array never closes".into())
}

/// Validates one event object's required fields and updates the counts.
fn check_event(
    ev: &str,
    stages: &[&str],
    buffer_events: &[&str],
    report: &mut TraceReport,
) -> Result<(), String> {
    report.events += 1;
    let field = |name: &str| -> Option<&str> {
        let key = format!("\"{name}\":");
        let at = ev.find(&key)? + key.len();
        Some(ev[at..].trim_start_matches('"'))
    };
    let ph = field("ph").ok_or_else(|| format!("event without \"ph\": {ev}"))?;
    for required in ["pid", "tid"] {
        if field(required).is_none() {
            return Err(format!("event without \"{required}\": {ev}"));
        }
    }
    let ph = ph.chars().next().unwrap_or(' ');
    if ph == 'M' {
        report.metadata += 1;
        return Ok(());
    }
    if field("ts").is_none() {
        return Err(format!("non-metadata event without \"ts\": {ev}"));
    }
    let name_of = |candidates: &[&str]| {
        candidates
            .iter()
            .any(|n| ev.contains(&format!("\"name\":\"{n}\"")))
    };
    if ph == 'X' && name_of(stages) {
        report.stage_spans += 1;
    }
    if ph == 'i' && name_of(buffer_events) {
        report.buffer_events += 1;
        if ev.contains("\"offset\":") {
            report.offset_args += 1;
        }
    }
    Ok(())
}

/// Splits `http://host:port/path?query` into (`host:port`, `/path?query`).
fn split_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("URL must start with http:// — got {url:?}"))?;
    match rest.find('/') {
        Some(i) => Ok((rest[..i].to_string(), rest[i..].to_string())),
        None => Ok((rest.to_string(), "/".to_string())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("net_client: {e}");
            ExitCode::FAILURE
        }
    }
}
