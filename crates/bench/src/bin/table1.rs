//! Regenerates the paper's **Table 1**: per query and input size, the
//! total evaluation time and the buffer-memory high watermark of each
//! engine.
//!
//! ```text
//! cargo run --release -p gcx-bench --bin table1 -- \
//!     [--sizes 1,5,10,20] [--queries Q1,Q6,Q8,Q13,Q20] \
//!     [--engines gcx,nogc,staticproj,dom] [--seed 42] [--q8-max-mb 5] \
//!     [--json report.json]
//! ```
//!
//! `--json PATH` additionally writes every measured cell as a
//! machine-readable `gcx-bench-streaming/1` report (see
//! `gcx_bench::report`); build with `--features count-allocs` to include
//! allocation metrics.
//!
//! Defaults use 1–20 MB documents (the paper's 10–200 MB scaled down ×10
//! with the same ×20 span; pass `--sizes 10,50,100,200` for paper scale).
//! Q8 is a nested-loop join — quadratic like the paper's prototype, which
//! itself timed out at 200 MB — so it is capped at `--q8-max-mb` (larger
//! runs print `skipped`, the analogue of the paper's `timeout`).

use gcx_bench::{alloc_count, arg_value, report, run_engine_counted, xmark_doc, Engine};
use gcx_query::CompileOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<f64> = arg_value(&args, "--sizes")
        .unwrap_or_else(|| "1,5,10,20".into())
        .split(',')
        .map(|s| s.trim().parse::<f64>().expect("size in MB"))
        .collect();
    let queries: Vec<String> = arg_value(&args, "--queries")
        .unwrap_or_else(|| "Q1,Q6,Q8,Q13,Q20".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let engines: Vec<Engine> = arg_value(&args, "--engines")
        .unwrap_or_else(|| "gcx,nogc,staticproj,dom".into())
        .split(',')
        .map(|s| Engine::parse(s.trim()).expect("engine name"))
        .collect();
    let seed: u64 = arg_value(&args, "--seed")
        .unwrap_or_else(|| "42".into())
        .parse()
        .expect("seed");
    let q8_max_mb: f64 = arg_value(&args, "--q8-max-mb")
        .unwrap_or_else(|| "5".into())
        .parse()
        .expect("q8 cap in MB");
    let json_path = arg_value(&args, "--json");
    let mut records: Vec<report::BenchRecord> = Vec::new();

    println!("GCX-RS Table 1 reproduction (paper: Schmidt/Scherzinger/Koch, ICDE 2007)");
    println!(
        "Engines: {}",
        engines
            .iter()
            .map(|e| e.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("Cells: evaluation time / buffer high watermark\n");

    // Header.
    print!("{:<14}", "Query");
    for e in &engines {
        print!("{:>22}", e.label());
    }
    println!();
    println!("{}", "-".repeat(14 + 22 * engines.len()));

    for qname in &queries {
        let Some(query) = gcx_xmark::by_name(qname) else {
            eprintln!("unknown query {qname}; available: Q1, Q6, Q8, Q13, Q20");
            continue;
        };
        for &mb in &sizes {
            let doc = xmark_doc(mb, seed);
            print!("{:<14}", format!("{qname} {mb}MB"));
            for &engine in &engines {
                if qname.eq_ignore_ascii_case("Q8") && mb > q8_max_mb && engine != Engine::Dom {
                    // The paper's Table 1 reports "timeout" for Q8 at
                    // 200 MB; the quadratic join is capped the same way.
                    print!("{:>22}", "skipped");
                    continue;
                }
                // Allocation counts cover the evaluation only (compile
                // excluded) — the per-event figure budgets the hot path.
                let outcome = run_engine_counted(engine, query, &doc, CompileOptions::default());
                match outcome {
                    Ok((cell, allocations)) => {
                        print!("{:>22}", cell.render());
                        if json_path.is_some() {
                            let r = &cell.report;
                            records.push(report::BenchRecord {
                                query: qname.clone(),
                                engine: engine.label().to_string(),
                                input_mb: mb,
                                input_bytes: doc.len() as u64,
                                seconds: r.elapsed.as_secs_f64(),
                                events: r.tokens_read,
                                peak_nodes: r.stats.peak_nodes as u64,
                                peak_bytes: r.stats.peak_bytes as u64,
                                dfa_states: r.dfa_states as u64,
                                output_bytes: r.output_bytes,
                                bytes_skipped: r.bytes_skipped,
                                allocations,
                                latency: None,
                            });
                        }
                    }
                    Err(e) => print!("{:>22}", format!("error: {e}")),
                }
            }
            println!();
        }
        println!();
    }
    println!("Note: memory is the buffer manager's own high watermark, measured");
    println!("identically across engines (see DESIGN.md / EXPERIMENTS.md).");

    if let Some(path) = json_path {
        let path = std::path::PathBuf::from(path);
        report::write_report(&path, seed, alloc_count::enabled(), &records, None, &[])
            .expect("write json report");
        eprintln!("wrote {}", path.display());
    }
}
