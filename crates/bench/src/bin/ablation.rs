//! Ablation study over the §6 optimizations (the design choices DESIGN.md
//! calls out): runs GCX with each optimization toggled off and reports the
//! impact on peak buffer memory, role traffic and time.
//!
//! ```text
//! cargo run --release -p gcx-bench --bin ablation -- [--mb 2] [--seed 42]
//! ```

use gcx_bench::{arg_value, run_engine, xmark_doc, Engine};
use gcx_query::CompileOptions;

struct Variant {
    name: &'static str,
    opts: CompileOptions,
}

fn variants() -> Vec<Variant> {
    let base = CompileOptions::default();
    vec![
        Variant {
            name: "full (all §6 optimizations)",
            opts: base,
        },
        Variant {
            name: "no early updates",
            opts: CompileOptions {
                early_updates: false,
                ..base
            },
        },
        Variant {
            name: "no redundant-role elim",
            opts: CompileOptions {
                redundant_role_elimination: false,
                ..base
            },
        },
        Variant {
            name: "no aggregate roles",
            opts: CompileOptions {
                aggregate_roles: false,
                ..base
            },
        },
        Variant {
            name: "plain (§4/§5 only)",
            opts: CompileOptions::plain(),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mb: f64 = arg_value(&args, "--mb")
        .unwrap_or_else(|| "2".into())
        .parse()
        .expect("--mb");
    let seed: u64 = arg_value(&args, "--seed")
        .unwrap_or_else(|| "42".into())
        .parse()
        .expect("--seed");
    let doc = xmark_doc(mb, seed);
    println!("GCX optimization ablations on {mb}MB XMark data (seed {seed})\n");
    for (qname, query) in gcx_xmark::ALL {
        if *qname == "Q8" && mb > 5.0 {
            println!("{qname}: skipped at {mb}MB (quadratic join)\n");
            continue;
        }
        println!("{qname}:");
        println!(
            "  {:<28} {:>10} {:>12} {:>12} {:>12} {:>10}",
            "variant", "time", "peak mem", "roles+", "roles-", "gc visits"
        );
        for v in variants() {
            match run_engine(Engine::Gcx, query, &doc, v.opts) {
                Ok(cell) => {
                    let s = &cell.report.stats;
                    println!(
                        "  {:<28} {:>10} {:>12} {:>12} {:>12} {:>10}",
                        v.name,
                        gcx_bench::fmt_duration(cell.report.elapsed),
                        s.peak_human(),
                        s.roles_assigned,
                        s.roles_removed,
                        s.gc_visits
                    );
                }
                Err(e) => println!("  {:<28} error: {e}", v.name),
            }
        }
        println!();
    }
}
