//! Loopback HTTP benchmark: MB/s through the gcx-net front-end and
//! concurrent-client scaling, reported in the same
//! `gcx-bench-streaming/1` records as the in-process engine numbers
//! (`engine` is `http-cN` for N concurrent clients).

use crate::report::{BenchRecord, LatencyStats};
use gcx_net::{client, http, GcxServer, NetConfig};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Streams `doc` through `query` over loopback HTTP with `clients`
/// concurrent connections (each uploading the full document chunked) and
/// returns one record for the aggregate throughput.
pub fn measure_serve_record(
    qname: &str,
    query: &str,
    doc: &[u8],
    mb: f64,
    clients: usize,
) -> Result<BenchRecord, String> {
    let clients = clients.max(1);
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: clients.clamp(2, 8),
            evaluators: clients.max(2),
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let path = format!("/query?xq={}", http::percent_encode(query));

    let start = Instant::now();
    let outputs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let path = &path;
                scope.spawn(move || -> Result<u64, String> {
                    let ps = client::PostStream::open(addr, path)
                        .map_err(|e| format!("connect: {e}"))?;
                    let chunks = doc
                        .chunks(64 * 1024)
                        .map(<[u8]>::to_vec)
                        .collect::<Vec<_>>();
                    let resp = ps
                        .stream_and_finish(chunks)
                        .map_err(|e| format!("stream: {e}"))?;
                    if resp.status != 200 {
                        return Err(format!("status {}: {}", resp.status, resp.text()));
                    }
                    Ok(resp.body.len() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Result<Vec<u64>, String>>()
    })?;
    let seconds = start.elapsed().as_secs_f64();

    let counters = server.counters();
    let events = counters.tokens_read_total.load(Ordering::Relaxed);
    let peak_nodes = counters.peak_nodes_max.load(Ordering::Relaxed);
    let output_bytes: u64 = outputs.iter().sum();
    server.shutdown();
    Ok(BenchRecord {
        query: qname.to_string(),
        engine: format!("http-c{clients}"),
        input_mb: mb * clients as f64,
        input_bytes: (doc.len() * clients) as u64,
        seconds,
        events,
        peak_nodes,
        // Not sampled over the wire per run; live figures are on /stats.
        peak_bytes: 0,
        dfa_states: 0,
        output_bytes,
        bytes_skipped: 0,
        allocations: None,
        // One big streamed request per client; individual-request
        // latency quantiles are meaningless here.
        latency: None,
    })
}

/// What one keep-alive client thread brings home: response bytes and
/// per-request (total, TTFB) latency samples in milliseconds.
struct ClientRun {
    output_bytes: u64,
    lat_ms: Vec<f64>,
    ttfb_ms: Vec<f64>,
}

/// Small-request scenario: `clients` concurrent connections each issue
/// `requests` sequential queries over `doc` (a *small* document, so
/// per-request overhead dominates). With `reuse` every client keeps one
/// connection for all its requests (`engine` `http-keepalive-cN`);
/// without, every request opens a fresh connection (`http-close-cN`) —
/// the back-to-back pair measures what keep-alive buys. Every request is
/// individually timed; the record carries client-observed p50/p99 total
/// latency and TTFB.
pub fn measure_keepalive_record(
    qname: &str,
    query: &str,
    doc: &[u8],
    clients: usize,
    requests: usize,
    reuse: bool,
) -> Result<BenchRecord, String> {
    let clients = clients.max(1);
    let requests = requests.max(1);
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            evaluators: 2,
            max_requests_per_conn: (requests as u64).max(1),
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let path = format!("/query?xq={}", http::percent_encode(query));

    let start = Instant::now();
    let runs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let path = &path;
                scope.spawn(move || -> Result<ClientRun, String> {
                    let mut run = ClientRun {
                        output_bytes: 0,
                        lat_ms: Vec::with_capacity(requests),
                        ttfb_ms: Vec::with_capacity(requests),
                    };
                    let mut conn = if reuse {
                        Some(
                            client::HttpClient::connect(addr)
                                .map_err(|e| format!("connect: {e}"))?,
                        )
                    } else {
                        None
                    };
                    for i in 0..requests {
                        let (resp, timing) = match &mut conn {
                            Some(c) => c.post_timed(path, doc),
                            None => client::post_timed(addr, path, doc),
                        }
                        .map_err(|e| format!("request {i}: {e}"))?;
                        if resp.status != 200 {
                            return Err(format!("status {}: {}", resp.status, resp.text()));
                        }
                        run.output_bytes += resp.body.len() as u64;
                        run.lat_ms.push(timing.total.as_secs_f64() * 1e3);
                        run.ttfb_ms.push(timing.ttfb.as_secs_f64() * 1e3);
                    }
                    Ok(run)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Result<Vec<ClientRun>, String>>()
    })?;
    let seconds = start.elapsed().as_secs_f64();

    let mut lat_ms = Vec::with_capacity(clients * requests);
    let mut ttfb_ms = Vec::with_capacity(clients * requests);
    for run in &runs {
        lat_ms.extend_from_slice(&run.lat_ms);
        ttfb_ms.extend_from_slice(&run.ttfb_ms);
    }
    let latency = LatencyStats::from_samples(&mut lat_ms, &mut ttfb_ms);

    let counters = server.counters();
    let events = counters.tokens_read_total.load(Ordering::Relaxed);
    let peak_nodes = counters.peak_nodes_max.load(Ordering::Relaxed);
    let output_bytes: u64 = runs.iter().map(|r| r.output_bytes).sum();
    let total_requests = (clients * requests) as u64;
    server.shutdown();
    Ok(BenchRecord {
        query: qname.to_string(),
        engine: format!(
            "http-{}-c{clients}",
            if reuse { "keepalive" } else { "close" }
        ),
        input_mb: doc.len() as f64 * total_requests as f64 / (1024.0 * 1024.0),
        input_bytes: doc.len() as u64 * total_requests,
        seconds,
        events,
        peak_nodes,
        peak_bytes: 0,
        dfa_states: 0,
        output_bytes,
        bytes_skipped: 0,
        allocations: None,
        latency,
    })
}
