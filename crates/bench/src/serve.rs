//! Loopback HTTP benchmark: MB/s through the gcx-net front-end and
//! concurrent-client scaling, reported in the same
//! `gcx-bench-streaming/1` records as the in-process engine numbers
//! (`engine` is `http-cN` for N concurrent clients).

use crate::report::{BenchRecord, LatencyStats};
use gcx_net::{client, http, GcxServer, NetConfig};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Streams `doc` through `query` over loopback HTTP with `clients`
/// concurrent connections (each uploading the full document chunked) and
/// returns one record for the aggregate throughput.
pub fn measure_serve_record(
    qname: &str,
    query: &str,
    doc: &[u8],
    mb: f64,
    clients: usize,
) -> Result<BenchRecord, String> {
    let clients = clients.max(1);
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: clients.clamp(2, 8),
            evaluators: clients.max(2),
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let path = format!("/query?xq={}", http::percent_encode(query));

    let start = Instant::now();
    let outputs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let path = &path;
                scope.spawn(move || -> Result<u64, String> {
                    let ps = client::PostStream::open(addr, path)
                        .map_err(|e| format!("connect: {e}"))?;
                    let chunks = doc
                        .chunks(64 * 1024)
                        .map(<[u8]>::to_vec)
                        .collect::<Vec<_>>();
                    let resp = ps
                        .stream_and_finish(chunks)
                        .map_err(|e| format!("stream: {e}"))?;
                    if resp.status != 200 {
                        return Err(format!("status {}: {}", resp.status, resp.text()));
                    }
                    Ok(resp.body.len() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Result<Vec<u64>, String>>()
    })?;
    let seconds = start.elapsed().as_secs_f64();

    let counters = server.counters();
    let events = counters.tokens_read_total.load(Ordering::Relaxed);
    let peak_nodes = counters.peak_nodes_max.load(Ordering::Relaxed);
    let output_bytes: u64 = outputs.iter().sum();
    server.shutdown();
    Ok(BenchRecord {
        query: qname.to_string(),
        engine: format!("http-c{clients}"),
        input_mb: mb * clients as f64,
        input_bytes: (doc.len() * clients) as u64,
        seconds,
        events,
        peak_nodes,
        // Not sampled over the wire per run; live figures are on /stats.
        peak_bytes: 0,
        dfa_states: 0,
        output_bytes,
        bytes_skipped: 0,
        allocations: None,
        // One big streamed request per client; individual-request
        // latency quantiles are meaningless here.
        latency: None,
    })
}

/// Process CPU time (utime + stime) in clock ticks from
/// `/proc/self/stat`, or `None` off Linux / on a parse failure.
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is space-separated, with utime/stime at fields 14/15
    // (1-based), i.e. offsets 11/12 past the paren.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

/// Measures the serving path's idle cost: parks `conns` keep-alive
/// connections against a fresh server, then samples process CPU time
/// over `idle` of enforced silence. With the epoll readiness loop every
/// worker sleeps in `epoll_wait` and every evaluator in its pool — the
/// expected tick delta is zero (a time-based poll loop shows up
/// immediately here). Returns a human-readable note for the report.
pub fn measure_idle_cpu_note(conns: usize, idle: std::time::Duration) -> Result<String, String> {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            evaluators: 2,
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let mut parked = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut c = client::HttpClient::connect(addr).map_err(|e| format!("connect {i}: {e}"))?;
        // One round-trip each so the connection is a parked keep-alive,
        // not a half-open socket the server has never seen.
        let resp = c.get("/healthz").map_err(|e| format!("warm {i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("warm {i}: status {}", resp.status));
        }
        parked.push(c);
    }
    // Let in-flight bookkeeping settle before opening the window.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let before = process_cpu_ticks().ok_or("no /proc/self/stat")?;
    std::thread::sleep(idle);
    let after = process_cpu_ticks().ok_or("no /proc/self/stat")?;
    drop(parked);
    server.shutdown();
    Ok(format!(
        "idle-cpu: {} clock tick(s) of process CPU over {:.1}s with {} parked \
         keep-alive connections (epoll readiness loop; a polling loop would burn here)",
        after.saturating_sub(before),
        idle.as_secs_f64(),
        conns,
    ))
}

/// What one keep-alive client thread brings home: response bytes and
/// per-request (total, TTFB) latency samples in milliseconds.
struct ClientRun {
    output_bytes: u64,
    lat_ms: Vec<f64>,
    ttfb_ms: Vec<f64>,
}

/// Small-request scenario: `clients` concurrent connections each issue
/// `requests` sequential queries over `doc` (a *small* document, so
/// per-request overhead dominates). With `reuse` every client keeps one
/// connection for all its requests (`engine` `http-keepalive-cN`);
/// without, every request opens a fresh connection (`http-close-cN`) —
/// the back-to-back pair measures what keep-alive buys. Every request is
/// individually timed; the record carries client-observed p50/p99 total
/// latency and TTFB.
pub fn measure_keepalive_record(
    qname: &str,
    query: &str,
    doc: &[u8],
    clients: usize,
    requests: usize,
    reuse: bool,
) -> Result<BenchRecord, String> {
    let clients = clients.max(1);
    let requests = requests.max(1);
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            evaluators: 2,
            max_requests_per_conn: (requests as u64).max(1),
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let path = format!("/query?xq={}", http::percent_encode(query));

    let start = Instant::now();
    let runs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let path = &path;
                scope.spawn(move || -> Result<ClientRun, String> {
                    let mut run = ClientRun {
                        output_bytes: 0,
                        lat_ms: Vec::with_capacity(requests),
                        ttfb_ms: Vec::with_capacity(requests),
                    };
                    let mut conn = if reuse {
                        Some(
                            client::HttpClient::connect(addr)
                                .map_err(|e| format!("connect: {e}"))?,
                        )
                    } else {
                        None
                    };
                    for i in 0..requests {
                        let (resp, timing) = match &mut conn {
                            Some(c) => c.post_timed(path, doc),
                            None => client::post_timed(addr, path, doc),
                        }
                        .map_err(|e| format!("request {i}: {e}"))?;
                        if resp.status != 200 {
                            return Err(format!("status {}: {}", resp.status, resp.text()));
                        }
                        run.output_bytes += resp.body.len() as u64;
                        run.lat_ms.push(timing.total.as_secs_f64() * 1e3);
                        run.ttfb_ms.push(timing.ttfb.as_secs_f64() * 1e3);
                    }
                    Ok(run)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Result<Vec<ClientRun>, String>>()
    })?;
    let seconds = start.elapsed().as_secs_f64();

    let mut lat_ms = Vec::with_capacity(clients * requests);
    let mut ttfb_ms = Vec::with_capacity(clients * requests);
    for run in &runs {
        lat_ms.extend_from_slice(&run.lat_ms);
        ttfb_ms.extend_from_slice(&run.ttfb_ms);
    }
    let latency = LatencyStats::from_samples(&mut lat_ms, &mut ttfb_ms);

    let counters = server.counters();
    let events = counters.tokens_read_total.load(Ordering::Relaxed);
    let peak_nodes = counters.peak_nodes_max.load(Ordering::Relaxed);
    let output_bytes: u64 = runs.iter().map(|r| r.output_bytes).sum();
    let total_requests = (clients * requests) as u64;
    server.shutdown();
    Ok(BenchRecord {
        query: qname.to_string(),
        engine: format!(
            "http-{}-c{clients}",
            if reuse { "keepalive" } else { "close" }
        ),
        input_mb: doc.len() as f64 * total_requests as f64 / (1024.0 * 1024.0),
        input_bytes: doc.len() as u64 * total_requests,
        seconds,
        events,
        peak_nodes,
        peak_bytes: 0,
        dfa_states: 0,
        output_bytes,
        bytes_skipped: 0,
        allocations: None,
        latency,
    })
}
