//! Optional allocation counting for the benchmark harness.
//!
//! With the `count-allocs` feature enabled, every binary and test in this
//! crate runs under a [`CountingAllocator`] — a thin wrapper over the
//! system allocator that counts allocator round-trips. The harness
//! samples [`allocations`] around an engine run to report
//! *allocations-per-event*, the metric the zero-allocation hot-path work
//! is held to.
//!
//! The counters exist unconditionally so code can call [`allocations`]
//! without `cfg` noise; without the feature they simply stay at zero
//! (check [`enabled`]).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper over the system allocator.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System`, only bumping relaxed
// atomic counters on the side.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one allocator round-trip (a grow counts against
        // the hot path exactly like a fresh allocation would).
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// True when the crate was built with `--features count-allocs` and the
/// counters below actually tick.
pub fn enabled() -> bool {
    cfg!(feature = "count-allocs")
}

/// Total allocator acquisitions (alloc + alloc_zeroed + realloc) so far.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total deallocations so far.
pub fn deallocations() -> u64 {
    FREES.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator so far.
pub fn allocated_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}
