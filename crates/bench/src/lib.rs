//! # gcx-bench — benchmark harness for the Table 1 reproduction
//!
//! Shared plumbing for the `table1` and `ablation` binaries and the
//! Criterion benches: document generation/caching, engine dispatch, and
//! paper-style table formatting.

use gcx_core::{run_dom, run_gcx, run_no_gc_streaming, run_static_projection, RunReport};
use gcx_query::{compile, CompileOptions};
use gcx_xmark::XmarkConfig;
use gcx_xml::TagInterner;
use std::io::{Read, Write};
use std::time::Duration;

pub mod alloc_count;
pub mod report;
pub mod serve;

/// With `--features count-allocs`, every binary and test of this crate
/// counts allocator round-trips (see [`alloc_count`]).
#[cfg(feature = "count-allocs")]
#[global_allocator]
static GLOBAL_ALLOC: alloc_count::CountingAllocator = alloc_count::CountingAllocator;

/// The engines of our Table 1 (see DESIGN.md for the mapping to the
/// paper's comparison systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// GCX: incremental projection + active garbage collection.
    Gcx,
    /// Streaming projection, no GC ("static analysis alone";
    /// FluXQuery-class buffering).
    NoGc,
    /// Full projection first, then evaluate (Galax + projection \[13\]).
    StaticProj,
    /// Full DOM (Galax/Saxon/QizX class).
    Dom,
}

impl Engine {
    /// All engines, table order.
    pub const ALL: [Engine; 4] = [Engine::Gcx, Engine::NoGc, Engine::StaticProj, Engine::Dom];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Gcx => "GCX",
            Engine::NoGc => "NoGC-Stream",
            Engine::StaticProj => "StaticProj",
            Engine::Dom => "DOM",
        }
    }

    /// Parses a label (CLI).
    pub fn parse(s: &str) -> Option<Engine> {
        match s.to_ascii_lowercase().as_str() {
            "gcx" => Some(Engine::Gcx),
            "nogc" | "nogc-stream" => Some(Engine::NoGc),
            "staticproj" | "static" => Some(Engine::StaticProj),
            "dom" => Some(Engine::Dom),
            _ => None,
        }
    }
}

/// A sink that counts output bytes without storing them, so output I/O
/// stays out of the measurements.
#[derive(Default)]
pub struct NullSink(pub u64);

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Generates (or returns cached) XMark data of roughly `mb` mebibytes.
pub fn xmark_doc(mb: f64, seed: u64) -> Vec<u8> {
    let cfg = XmarkConfig { seed, scale: mb };
    let mut buf = Vec::with_capacity((mb * 1024.0 * 1024.0) as usize);
    gcx_xmark::generate(cfg, &mut buf).expect("generation");
    buf
}

/// Query for the skip-heavy synthetic scenario: touches only the tiny
/// `/root/live` subtree, so static projection proves the whole `<dead>`
/// sibling (~99 % of the document) dead and the engine consumes it via
/// `skip_subtree`'s raw byte scanner. The resulting `skip_mb_per_sec`
/// is the raw-scan ceiling tracked in `BENCH_streaming.json`.
pub const SKIPHEAVY_QUERY: &str = "<skip>{ for $x in /root/live return $x/name/text() }</skip>";

/// Generates the skip-heavy synthetic document for [`SKIPHEAVY_QUERY`]:
/// a tiny live `<live>` subtree followed by a `<dead>` sibling padded to
/// roughly `mb` mebibytes with markup the skip scanner has to get right
/// — nested tags, quoted attribute values containing `>`, comments,
/// CDATA with overlapping `]]]>` runs, and ~130-byte text stretches.
pub fn skipheavy_doc(mb: f64) -> Vec<u8> {
    let target = (mb * 1024.0 * 1024.0) as usize;
    let mut buf = Vec::with_capacity(target + 512);
    buf.extend_from_slice(b"<root><live><name>hit</name></live><dead>");
    let block: &[u8] = b"<item cat=\"a&gt;b\" note='x>y'>\
        <sku>98431-17</sku>\
        <desc>Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do \
        eiusmod tempor incididunt ut labore et dolore magna aliqua praesent. \
        Duis aute irure dolor in reprehenderit in voluptate velit esse cillum \
        dolore eu fugiat nulla pariatur, excepteur sint occaecat cupidatat non \
        proident sunt in culpa qui officia deserunt mollit anim id est laborum \
        sed ut perspiciatis unde omnis iste natus error sit voluptatem rem.</desc>\
        <!-- dead comment, with a > inside -->\
        <blob><![CDATA[raw <bytes> & an overlapping tail x]]]></blob>\
        <qty unit=\"kg\">042</qty>\
        </item>";
    let close: &[u8] = b"</dead></root>";
    while buf.len() + block.len() + close.len() <= target {
        buf.extend_from_slice(block);
    }
    buf.extend_from_slice(close);
    buf
}

/// One measured cell of the table.
#[derive(Debug, Clone)]
pub struct Cell {
    pub report: RunReport,
}

impl Cell {
    /// `0.18s / 1.2MB` in the paper's Table 1 style.
    pub fn render(&self) -> String {
        format!(
            "{} / {}",
            fmt_duration(self.report.elapsed),
            self.report.stats.peak_human()
        )
    }
}

/// Formats a duration like the paper (seconds, or mm:ss above a minute).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{:02}:{:02}", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else {
        format!("{secs:.2}s")
    }
}

/// Runs `engine` on (query, document); `copts` selects the optimization
/// set (ablations).
pub fn run_engine(
    engine: Engine,
    query: &str,
    doc: &[u8],
    copts: CompileOptions,
) -> Result<Cell, String> {
    run_engine_counted(engine, query, doc, copts).map(|(cell, _)| cell)
}

/// As [`run_engine`], additionally reporting allocator round-trips over
/// the *evaluation only* — query compilation is excluded, so the count
/// reflects the per-event hot path rather than one-time setup. `None`
/// without the `count-allocs` feature.
pub fn run_engine_counted(
    engine: Engine,
    query: &str,
    doc: &[u8],
    copts: CompileOptions,
) -> Result<(Cell, Option<u64>), String> {
    let mut tags = TagInterner::new();
    let compiled = compile(query, &mut tags, copts).map_err(|e| e.to_string())?;
    let mut sink = NullSink::default();
    let before = alloc_count::allocations();
    let report = match engine {
        Engine::Gcx => run_gcx(&compiled, &mut tags, doc, &mut sink),
        Engine::NoGc => run_no_gc_streaming(&compiled, &mut tags, doc, &mut sink),
        Engine::StaticProj => run_static_projection(&compiled, &mut tags, doc, &mut sink),
        Engine::Dom => run_dom(&compiled, &mut tags, doc, &mut sink),
    }
    .map_err(|e| e.to_string())?;
    let allocations = alloc_count::enabled().then(|| alloc_count::allocations() - before);
    if let Some(false) = report.safety {
        return Err("safety violation: roles leaked".into());
    }
    Ok((Cell { report }, allocations))
}

/// Runs (engine, query) `repeat` times over `doc`, keeping the best
/// wall-clock time and (with the `count-allocs` feature) the allocator
/// round-trips of one run. Produces a [`report::BenchRecord`] for the
/// machine-readable report.
pub fn measure_record(
    engine: Engine,
    qname: &str,
    query: &str,
    doc: &[u8],
    mb: f64,
    repeat: usize,
) -> Result<report::BenchRecord, String> {
    let mut best: Option<Cell> = None;
    let mut allocations = None;
    for _ in 0..repeat.max(1) {
        let (cell, allocs) = run_engine_counted(engine, query, doc, CompileOptions::default())?;
        if allocs.is_some() {
            allocations = allocs;
        }
        let improved = match &best {
            Some(b) => cell.report.elapsed < b.report.elapsed,
            None => true,
        };
        if improved {
            best = Some(cell);
        }
    }
    let cell = best.expect("repeat >= 1");
    let r = &cell.report;
    Ok(report::BenchRecord {
        query: qname.to_string(),
        engine: engine.label().to_string(),
        input_mb: mb,
        input_bytes: doc.len() as u64,
        seconds: r.elapsed.as_secs_f64(),
        events: r.tokens_read,
        peak_nodes: r.stats.peak_nodes as u64,
        peak_bytes: r.stats.peak_bytes as u64,
        dfa_states: r.dfa_states as u64,
        output_bytes: r.output_bytes,
        bytes_skipped: r.bytes_skipped,
        allocations,
        latency: None,
    })
}

/// Measures the lexer's steady-state allocation behaviour: the document
/// is lexed twice back-to-back under one synthetic root with one shared
/// interner, and allocator round-trips are counted over the second copy
/// only — by then the tag vocabulary is interned and every scratch
/// buffer has reached its high-water capacity, so the expected count is
/// exactly zero. Events are counted over the same stretch.
pub fn lexer_steady_probe(doc: &[u8]) -> Result<report::LexerProbe, String> {
    use gcx_xml::XmlLexer;
    const OPEN: &[u8] = b"<gcx-probe>";
    const CLOSE: &[u8] = b"</gcx-probe>";
    let reader = OPEN.chain(doc).chain(doc).chain(CLOSE);
    let boundary = (OPEN.len() + doc.len()) as u64;
    let mut tags = TagInterner::new();
    let mut lexer = XmlLexer::new(reader, &mut tags);
    // Warm pass: the first copy of the document.
    while lexer.offset() < boundary {
        if lexer.next_event().map_err(|e| e.to_string())?.is_none() {
            return Err("probe stream ended during warmup".into());
        }
    }
    // Measured pass: identical input, warm everything.
    let before = alloc_count::allocations();
    let mut events = 0u64;
    while lexer.next_event().map_err(|e| e.to_string())?.is_some() {
        events += 1;
    }
    let allocations = alloc_count::allocations() - before;
    Ok(report::LexerProbe {
        events,
        allocations,
    })
}

/// Simple `--flag value` CLI parsing shared by the binaries.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_roundtrip_labels() {
        for e in Engine::ALL {
            assert!(Engine::parse(e.label()).is_some() || e != Engine::Gcx);
        }
        assert_eq!(Engine::parse("gcx"), Some(Engine::Gcx));
        assert_eq!(Engine::parse("DOM"), Some(Engine::Dom));
        assert_eq!(Engine::parse("bogus"), None);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(180)), "0.18s");
        assert_eq!(fmt_duration(Duration::from_secs(83)), "01:23");
    }

    #[test]
    fn all_engines_agree_on_tiny_xmark() {
        let doc = xmark_doc(0.02, 11);
        for (name, query) in gcx_xmark::ALL {
            let mut outputs = Vec::new();
            for e in Engine::ALL {
                let mut tags = TagInterner::new();
                let compiled =
                    compile(query, &mut tags, CompileOptions::default()).expect("compile");
                let mut out = Vec::new();
                let r = match e {
                    Engine::Gcx => run_gcx(&compiled, &mut tags, &doc[..], &mut out),
                    Engine::NoGc => run_no_gc_streaming(&compiled, &mut tags, &doc[..], &mut out),
                    Engine::StaticProj => {
                        run_static_projection(&compiled, &mut tags, &doc[..], &mut out)
                    }
                    Engine::Dom => run_dom(&compiled, &mut tags, &doc[..], &mut out),
                };
                r.unwrap_or_else(|err| panic!("{name} on {:?}: {err}", e));
                outputs.push(out);
            }
            for o in &outputs[1..] {
                assert_eq!(
                    String::from_utf8_lossy(&outputs[0]),
                    String::from_utf8_lossy(o),
                    "engines disagree on {name}"
                );
            }
        }
    }

    #[test]
    fn skipheavy_doc_is_mostly_dead_and_engines_agree() {
        let doc = skipheavy_doc(0.05);
        let mut outputs = Vec::new();
        for e in Engine::ALL {
            let mut tags = TagInterner::new();
            let compiled =
                compile(SKIPHEAVY_QUERY, &mut tags, CompileOptions::default()).expect("compile");
            let mut out = Vec::new();
            let r = match e {
                Engine::Gcx => run_gcx(&compiled, &mut tags, &doc[..], &mut out),
                Engine::NoGc => run_no_gc_streaming(&compiled, &mut tags, &doc[..], &mut out),
                Engine::StaticProj => {
                    run_static_projection(&compiled, &mut tags, &doc[..], &mut out)
                }
                Engine::Dom => run_dom(&compiled, &mut tags, &doc[..], &mut out),
            };
            r.unwrap_or_else(|err| panic!("skip-heavy on {e:?}: {err}"));
            outputs.push(out);
        }
        for o in &outputs[1..] {
            assert_eq!(
                String::from_utf8_lossy(&outputs[0]),
                String::from_utf8_lossy(o),
                "engines disagree on skip-heavy doc"
            );
        }
        // The scenario only measures skip throughput if nearly everything
        // is actually skipped.
        let r = measure_record(Engine::Gcx, "SYNTH-SKIP", SKIPHEAVY_QUERY, &doc, 0.05, 1)
            .expect("measure skip-heavy");
        assert!(
            r.skip_ratio() > 0.95,
            "skip ratio too low: {}",
            r.skip_ratio()
        );
    }

    #[test]
    fn gcx_peak_below_dom_peak() {
        let doc = xmark_doc(0.05, 13);
        let gcx = run_engine(Engine::Gcx, gcx_xmark::Q1, &doc, CompileOptions::default()).unwrap();
        let dom = run_engine(Engine::Dom, gcx_xmark::Q1, &doc, CompileOptions::default()).unwrap();
        assert!(
            gcx.report.stats.peak_bytes * 5 < dom.report.stats.peak_bytes,
            "GCX {} vs DOM {}",
            gcx.report.stats.peak_bytes,
            dom.report.stats.peak_bytes
        );
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--sizes", "1,5", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--sizes").as_deref(), Some("1,5"));
        assert_eq!(arg_value(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(arg_value(&args, "--none"), None);
    }
}
