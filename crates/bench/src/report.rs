//! Machine-readable benchmark reports (`BENCH_streaming.json`).
//!
//! The JSON is hand-rolled (the workspace is offline, no serde) against a
//! small stable schema, `gcx-bench-streaming/1`:
//!
//! ```json
//! {
//!   "schema": "gcx-bench-streaming/1",
//!   "seed": 42,
//!   "alloc_counting": true,
//!   "results": [
//!     { "query": "Q1", "engine": "gcx", "input_mb": 8.0,
//!       "input_bytes": 8388608, "seconds": 0.031, "mb_per_sec": 258.0,
//!       "events": 1203456, "events_per_sec": 38821161.0,
//!       "peak_nodes": 7, "peak_bytes": 959, "dfa_states": 12,
//!       "output_bytes": 123456,
//!       "bytes_skipped": 6291456, "skip_ratio": 0.75,
//!       "allocations": 812, "allocs_per_event": 0.00067 }
//!   ],
//!   "lexer_steady_state": { "events": 600000, "allocations": 0,
//!                           "allocs_per_event": 0.0 }
//! }
//! ```
//!
//! Schema notes: the id stays `gcx-bench-streaming/1`; additions are
//! strictly additive. **Additive since the first cut:** `bytes_skipped`
//! (input bytes consumed by the lexer's dead-subtree raw scanner; 0 for
//! engines/scenarios that cannot observe it, e.g. the wire-side
//! `http-cN` records), `skip_ratio` (`bytes_skipped / input_bytes`), and
//! `latency` (client-observed per-request quantiles — `p50_ms`, `p99_ms`,
//! `ttfb_p50_ms`, `ttfb_p99_ms` — sampled by the small-request keep-alive
//! scenarios; `null` for throughput records that issue one big request),
//! and `skip_mb_per_sec` (skipped mebibytes over the run's wall clock —
//! the raw dead-subtree scan throughput, tracked by the `SYNTH-SKIP`
//! skip-heavy synthetic row; 0 where `bytes_skipped` is 0), the
//! top-level `scan_kernel` (the byte-scanning kernel the lexer selected
//! for this host: `scalar`, `swar`, `sse2` or `avx2`), and the
//! top-level `notes` array (free-form run observations measured outside
//! any one record, e.g. the serving path's idle-CPU probe).
//! With skip-mode lexing, `events` counts only *materialized* tokens —
//! tokens inside raw-skipped subtrees appear exclusively in
//! `bytes_skipped`.
//!
//! `allocations`/`allocs_per_event` are `null` unless the harness was
//! built with `--features count-allocs`. `lexer_steady_state` probes the
//! lexer alone over a document whose tag vocabulary is already interned —
//! the hard zero-allocation target of the hot-path work.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One measured (query, engine, size) cell.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub query: String,
    pub engine: String,
    pub input_mb: f64,
    pub input_bytes: u64,
    /// Best-of-N wall-clock evaluation time.
    pub seconds: f64,
    pub events: u64,
    pub peak_nodes: u64,
    pub peak_bytes: u64,
    pub dfa_states: u64,
    pub output_bytes: u64,
    /// Input bytes consumed by skip-mode lexing (dead subtrees scanned
    /// raw, never tokenized). 0 where unobservable (wire-side records).
    pub bytes_skipped: u64,
    /// Allocator round-trips during one run (`None` without counting).
    pub allocations: Option<u64>,
    /// Client-observed per-request latency quantiles (`None` for
    /// scenarios that do not sample individual requests).
    pub latency: Option<LatencyStats>,
}

/// Client-side per-request latency quantiles in milliseconds, measured
/// over every request of a small-request wire scenario (the server-side
/// view of the same distributions is on `GET /metrics`).
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Median request latency (send → response fully read).
    pub p50_ms: f64,
    /// 99th-percentile request latency.
    pub p99_ms: f64,
    /// Median time to first response byte.
    pub ttfb_p50_ms: f64,
    /// 99th-percentile time to first response byte.
    pub ttfb_p99_ms: f64,
}

impl LatencyStats {
    /// Builds the quantile summary from raw samples (sorted in place).
    /// `None` when either sample set is empty.
    pub fn from_samples(lat_ms: &mut [f64], ttfb_ms: &mut [f64]) -> Option<LatencyStats> {
        if lat_ms.is_empty() || ttfb_ms.is_empty() {
            return None;
        }
        lat_ms.sort_unstable_by(f64::total_cmp);
        ttfb_ms.sort_unstable_by(f64::total_cmp);
        Some(LatencyStats {
            p50_ms: percentile(lat_ms, 0.50),
            p99_ms: percentile(lat_ms, 0.99),
            ttfb_p50_ms: percentile(ttfb_ms, 0.50),
            ttfb_p99_ms: percentile(ttfb_ms, 0.99),
        })
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set
/// (`q` in `0.0..=1.0`); `0.0` for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl BenchRecord {
    pub fn mb_per_sec(&self) -> f64 {
        (self.input_bytes as f64 / (1024.0 * 1024.0)) / self.seconds.max(1e-9)
    }

    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.seconds.max(1e-9)
    }

    pub fn allocs_per_event(&self) -> Option<f64> {
        self.allocations
            .map(|a| a as f64 / (self.events.max(1) as f64))
    }

    /// Fraction of the input the lexer raw-skipped as dead subtrees.
    pub fn skip_ratio(&self) -> f64 {
        self.bytes_skipped as f64 / (self.input_bytes.max(1) as f64)
    }

    /// Throughput of the raw dead-subtree scan alone: skipped mebibytes
    /// over the whole run's wall clock. A lower bound on the scanner's
    /// speed (the run also spends time on live events); meaningful on
    /// skip-heavy rows like `SYNTH-SKIP` where it tracks the raw-scan
    /// ceiling.
    pub fn skip_mb_per_sec(&self) -> f64 {
        (self.bytes_skipped as f64 / (1024.0 * 1024.0)) / self.seconds.max(1e-9)
    }
}

/// The steady-state lexer probe: events and allocations over the second
/// half of a document lexed with a fully warmed interner and scratch.
#[derive(Debug, Clone, Copy)]
pub struct LexerProbe {
    pub events: u64,
    pub allocations: u64,
}

impl LexerProbe {
    pub fn allocs_per_event(&self) -> f64 {
        self.allocations as f64 / (self.events.max(1) as f64)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Renders the full report document. `notes` is an additive free-form
/// list for run observations that are measured but not per-record —
/// e.g. the idle-CPU probe of the serving path (empty slice → `[]`).
pub fn render_report(
    seed: u64,
    alloc_counting: bool,
    records: &[BenchRecord],
    lexer: Option<LexerProbe>,
    notes: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gcx-bench-streaming/1\",\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"alloc_counting\": {alloc_counting},");
    let _ = writeln!(
        out,
        "  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    let _ = writeln!(
        out,
        "  \"scan_kernel\": \"{}\",",
        gcx_xml::scan::kernel_name()
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"query\": \"{}\", \"engine\": \"{}\", \"input_mb\": {}, \
             \"input_bytes\": {}, \"seconds\": {}, \"mb_per_sec\": {}, \
             \"events\": {}, \"events_per_sec\": {}, \"peak_nodes\": {}, \
             \"peak_bytes\": {}, \"dfa_states\": {}, \"output_bytes\": {}, \
             \"bytes_skipped\": {}, \"skip_ratio\": {}, \
             \"skip_mb_per_sec\": {}, \
             \"allocations\": {}, \"allocs_per_event\": {}, \
             \"latency\": {} }}",
            json_escape(&r.query),
            json_escape(&r.engine),
            json_f64(r.input_mb),
            r.input_bytes,
            json_f64(r.seconds),
            json_f64(r.mb_per_sec()),
            r.events,
            json_f64(r.events_per_sec()),
            r.peak_nodes,
            r.peak_bytes,
            r.dfa_states,
            r.output_bytes,
            r.bytes_skipped,
            json_f64(r.skip_ratio()),
            json_f64(r.skip_mb_per_sec()),
            json_opt_u64(r.allocations),
            r.allocs_per_event()
                .map_or_else(|| "null".to_string(), json_f64),
            r.latency.map_or_else(
                || "null".to_string(),
                |l| format!(
                    "{{ \"p50_ms\": {}, \"p99_ms\": {}, \
                     \"ttfb_p50_ms\": {}, \"ttfb_p99_ms\": {} }}",
                    json_f64(l.p50_ms),
                    json_f64(l.p99_ms),
                    json_f64(l.ttfb_p50_ms),
                    json_f64(l.ttfb_p99_ms),
                )
            ),
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"notes\": [");
    for (i, note) in notes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&json_escape(note));
        out.push('"');
    }
    out.push_str("],\n");
    match lexer {
        Some(p) => {
            let _ = writeln!(
                out,
                "  \"lexer_steady_state\": {{ \"events\": {}, \"allocations\": {}, \
                 \"allocs_per_event\": {} }}",
                p.events,
                p.allocations,
                json_f64(p.allocs_per_event())
            );
        }
        None => out.push_str("  \"lexer_steady_state\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Writes the report to `path`.
pub fn write_report(
    path: &Path,
    seed: u64,
    alloc_counting: bool,
    records: &[BenchRecord],
    lexer: Option<LexerProbe>,
    notes: &[String],
) -> io::Result<()> {
    std::fs::write(
        path,
        render_report(seed, alloc_counting, records, lexer, notes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            query: "Q1".into(),
            engine: "gcx".into(),
            input_mb: 1.0,
            input_bytes: 1 << 20,
            seconds: 0.5,
            events: 1000,
            peak_nodes: 7,
            peak_bytes: 900,
            dfa_states: 3,
            output_bytes: 42,
            bytes_skipped: 1 << 19,
            allocations: Some(10),
            latency: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = record();
        assert!((r.mb_per_sec() - 2.0).abs() < 1e-9);
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
        assert!((r.allocs_per_event().unwrap() - 0.01).abs() < 1e-9);
        assert!((r.skip_ratio() - 0.5).abs() < 1e-9);
        // 0.5 MiB skipped in 0.5 s = 1 MiB/s.
        assert!((r.skip_mb_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_shape_is_stable_json() {
        let json = render_report(
            7,
            true,
            &[record()],
            Some(LexerProbe {
                events: 10,
                allocations: 0,
            }),
            &[],
        );
        assert!(json.contains("\"schema\": \"gcx-bench-streaming/1\""));
        assert!(json.contains("\"notes\": [],"), "{json}");
        assert!(json.contains("\"query\": \"Q1\""));
        assert!(json.contains("\"bytes_skipped\": 524288"));
        assert!(json.contains("\"skip_ratio\": 0.5"));
        assert!(json.contains("\"skip_mb_per_sec\": 1,"));
        assert!(json.contains("\"scan_kernel\": \""));
        assert!(json.contains("\"allocs_per_event\": 0 }"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn null_fields_without_counting() {
        let mut r = record();
        r.allocations = None;
        let json = render_report(7, false, &[r], None, &[]);
        assert!(json.contains("\"allocations\": null"));
        assert!(json.contains("\"latency\": null"));
        assert!(json.contains("\"lexer_steady_state\": null"));
    }

    #[test]
    fn notes_render_escaped_and_in_order() {
        let notes = vec!["idle-cpu: 0 ticks".to_string(), "b \"quoted\"".to_string()];
        let json = render_report(7, false, &[record()], None, &notes);
        assert!(
            json.contains("\"notes\": [\"idle-cpu: 0 ticks\", \"b \\\"quoted\\\"\"],"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn latency_stats_render_and_quantiles() {
        // 100 samples 1..=100 ms: nearest-rank p50 = 50, p99 = 99.
        let mut lat: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let mut ttfb: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let stats = LatencyStats::from_samples(&mut lat, &mut ttfb).unwrap();
        assert_eq!(stats.p50_ms, 50.0);
        assert_eq!(stats.p99_ms, 99.0);
        assert_eq!(stats.ttfb_p50_ms, 5.0);
        assert_eq!(stats.ttfb_p99_ms, 9.9);

        let mut r = record();
        r.latency = Some(stats);
        let json = render_report(7, false, &[r], None, &[]);
        assert!(
            json.contains("\"latency\": { \"p50_ms\": 50, \"p99_ms\": 99,"),
            "{json}"
        );
        assert!(json.contains("\"ttfb_p50_ms\": 5,"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.0), 3.0);
        assert_eq!(percentile(&[3.0], 1.0), 3.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 1.0), 2.0);
        assert!(LatencyStats::from_samples(&mut [], &mut [1.0]).is_none());
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
