//! # gcx-xmark — XMark-like workload for the GCX benchmarks
//!
//! The paper's evaluation (§7, Table 1) runs five adapted XMark queries
//! over documents of 10–200 MB. This crate provides:
//!
//! * [`gen`] — a seeded, size-targeted, streaming generator producing
//!   auction-site documents with the XMark element structure (attributes
//!   already converted to subelements, as the paper's adaptation does);
//! * [`queries`] — the adapted Q1, Q6, Q8, Q13 and Q20 in the XQ surface
//!   syntax.
//!
//! See DESIGN.md for the substitution rationale (the original `xmlgen` is
//! not available offline).

pub mod gen;
pub mod queries;
pub mod vocab;

pub use gen::{generate, generate_string, XmarkConfig, BYTES_PER_SCALE};
pub use queries::{by_name, ALL, Q1, Q13, Q20, Q6, Q8};
