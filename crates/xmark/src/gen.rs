//! Seeded, size-targeted XMark-like document generator.
//!
//! The paper evaluates on XMark \[21\] documents of 10–200 MB, generated
//! with the original `xmlgen` and adapted by converting attributes into
//! subelements (§7). `xmlgen` is not available offline, so this module
//! generates documents with the same element structure (regions/items,
//! categories, people, open and closed auctions), already attribute-free,
//! deterministic per seed, and sized to a byte target.
//!
//! The generator streams directly to a writer: arbitrarily large documents
//! cost O(1) memory to produce.

use crate::vocab::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{self, Write};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// RNG seed; identical seeds produce identical documents.
    pub seed: u64,
    /// Size scale: 1.0 ≈ 1 MiB of XML.
    pub scale: f64,
}

/// Empirical bytes per unit of scale (calibrated by tests to ±25%).
pub const BYTES_PER_SCALE: f64 = 1024.0 * 1024.0;

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            seed: 42,
            scale: 1.0,
        }
    }
}

impl XmarkConfig {
    /// Configuration aiming at roughly `bytes` of output.
    pub fn with_target_bytes(bytes: usize, seed: u64) -> Self {
        XmarkConfig {
            seed,
            scale: bytes as f64 / BYTES_PER_SCALE,
        }
    }
}

/// Byte-counting writer wrapper.
struct Counting<W: Write> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for Counting<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Generates a document into `out`; returns the number of bytes written.
pub fn generate<W: Write>(cfg: XmarkConfig, out: W) -> io::Result<u64> {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed),
        w: Counting {
            inner: io::BufWriter::new(out),
            bytes: 0,
        },
        persons: scaled(cfg.scale, 640.0),
        items: scaled(cfg.scale, 540.0),
        open_auctions: scaled(cfg.scale, 290.0),
        closed_auctions: scaled(cfg.scale, 235.0),
        categories: scaled(cfg.scale, 25.0),
    };
    g.site()?;
    g.w.flush()?;
    Ok(g.w.bytes)
}

/// Generates a document as a `String` (tests, small benchmarks).
pub fn generate_string(cfg: XmarkConfig) -> String {
    let mut buf = Vec::new();
    generate(cfg, &mut buf).expect("vec write");
    String::from_utf8(buf).expect("generator emits UTF-8")
}

fn scaled(scale: f64, base: f64) -> usize {
    ((base * scale).round() as usize).max(1)
}

struct Gen<W: Write> {
    rng: StdRng,
    w: Counting<W>,
    persons: usize,
    items: usize,
    open_auctions: usize,
    closed_auctions: usize,
    categories: usize,
}

impl<W: Write> Gen<W> {
    fn open(&mut self, tag: &str) -> io::Result<()> {
        write!(self.w, "<{tag}>")
    }

    fn close(&mut self, tag: &str) -> io::Result<()> {
        write!(self.w, "</{tag}>")
    }

    fn leaf(&mut self, tag: &str, value: &str) -> io::Result<()> {
        write!(self.w, "<{tag}>{value}</{tag}>")
    }

    fn pick<'a>(&mut self, list: &[&'a str]) -> &'a str {
        list[self.rng.random_range(0..list.len())]
    }

    fn words(&mut self, n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(self.pick(WORDS));
        }
        s
    }

    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.random_range(1..=12),
            self.rng.random_range(1..=28),
            self.rng.random_range(1998..=2006)
        )
    }

    fn site(&mut self) -> io::Result<()> {
        self.open("site")?;
        self.regions()?;
        self.categories()?;
        self.people()?;
        self.open_auctions()?;
        self.closed_auctions()?;
        self.close("site")
    }

    fn regions(&mut self) -> io::Result<()> {
        self.open("regions")?;
        // Items are distributed over the six continents with XMark-like
        // skew (europe and namerica hold most of them).
        let weights = [0.10, 0.18, 0.08, 0.30, 0.26, 0.08];
        let mut next_id = 0usize;
        for (region, w) in REGIONS.iter().zip(weights) {
            self.open(region)?;
            let count = ((self.items as f64) * w).round() as usize;
            for _ in 0..count {
                self.item(next_id)?;
                next_id += 1;
            }
            self.close(region)?;
        }
        self.close("regions")
    }

    fn item(&mut self, id: usize) -> io::Result<()> {
        self.open("item")?;
        self.leaf("id", &format!("item{id}"))?;
        let loc = self.pick(COUNTRIES).to_string();
        self.leaf("location", &loc)?;
        let q = self.rng.random_range(1..=5).to_string();
        self.leaf("quantity", &q)?;
        let name = self.words(2);
        self.leaf("name", &name)?;
        self.leaf("payment", "Creditcard")?;
        self.open("description")?;
        if self.rng.random_bool(0.3) {
            self.open("parlist")?;
            for _ in 0..self.rng.random_range(1..=3) {
                self.open("listitem")?;
                self.open("text")?;
                let before = self.words(4);
                write!(self.w, "{before} ")?;
                let kw = self.pick(WORDS).to_string();
                self.leaf("keyword", &kw)?;
                let after = self.words(3);
                write!(self.w, " {after}")?;
                self.close("text")?;
                self.close("listitem")?;
            }
            self.close("parlist")?;
        } else {
            let n = self.rng.random_range(5..=14);
            let t = self.words(n);
            self.leaf("text", &t)?;
        }
        self.close("description")?;
        self.leaf("shipping", "Will ship internationally")?;
        for _ in 0..self.rng.random_range(1..=3) {
            let c = self.rng.random_range(0..self.categories);
            self.leaf("incategory", &format!("category{c}"))?;
        }
        if self.rng.random_bool(0.4) {
            self.open("mailbox")?;
            for _ in 0..self.rng.random_range(1..=2) {
                self.open("mail")?;
                let from = self.person_name();
                self.leaf("from", &from)?;
                let to = self.person_name();
                self.leaf("to", &to)?;
                let d = self.date();
                self.leaf("date", &d)?;
                let n = self.rng.random_range(4..=10);
                let t = self.words(n);
                self.leaf("text", &t)?;
                self.close("mail")?;
            }
            self.close("mailbox")?;
        }
        self.close("item")
    }

    fn person_name(&mut self) -> String {
        format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES))
    }

    fn categories(&mut self) -> io::Result<()> {
        self.open("categories")?;
        for i in 0..self.categories {
            self.open("category")?;
            self.leaf("id", &format!("category{i}"))?;
            let theme = self.pick(CATEGORY_THEMES).to_string();
            self.leaf("name", &theme)?;
            let d = self.words(6);
            self.leaf("description", &d)?;
            self.close("category")?;
        }
        self.close("categories")
    }

    fn people(&mut self) -> io::Result<()> {
        self.open("people")?;
        for i in 0..self.persons {
            self.person(i)?;
        }
        self.close("people")
    }

    fn person(&mut self, i: usize) -> io::Result<()> {
        self.open("person")?;
        self.leaf("id", &format!("person{i}"))?;
        let name = self.person_name();
        self.leaf("name", &name)?;
        let email = format!(
            "mailto:{}@{}.example",
            name.to_lowercase().replace(' ', "."),
            self.pick(CITIES).to_lowercase()
        );
        self.leaf("emailaddress", &email)?;
        if self.rng.random_bool(0.6) {
            let phone = format!(
                "+{} ({}) {}",
                self.rng.random_range(1..100),
                self.rng.random_range(100..1000),
                self.rng.random_range(1_000_000..10_000_000)
            );
            self.leaf("phone", &phone)?;
        }
        if self.rng.random_bool(0.7) {
            self.open("address")?;
            let street = format!("{} {} St", self.rng.random_range(1..100), self.pick(WORDS));
            self.leaf("street", &street)?;
            let city = self.pick(CITIES).to_string();
            self.leaf("city", &city)?;
            let country = self.pick(COUNTRIES).to_string();
            self.leaf("country", &country)?;
            let zip = self.rng.random_range(10000..99999).to_string();
            self.leaf("zipcode", &zip)?;
            self.close("address")?;
        }
        if self.rng.random_bool(0.75) {
            let cc = format!(
                "{} {} {} {}",
                self.rng.random_range(1000..10000),
                self.rng.random_range(1000..10000),
                self.rng.random_range(1000..10000),
                self.rng.random_range(1000..10000)
            );
            self.leaf("creditcard", &cc)?;
        }
        if self.rng.random_bool(0.7) {
            self.open("profile")?;
            for _ in 0..self.rng.random_range(0..=3) {
                let c = self.rng.random_range(0..self.categories);
                self.leaf("interest", &format!("category{c}"))?;
            }
            if self.rng.random_bool(0.5) {
                self.leaf("education", "Graduate School")?;
            }
            if self.rng.random_bool(0.5) {
                let g = if self.rng.random_bool(0.5) {
                    "male"
                } else {
                    "female"
                };
                self.leaf("gender", g)?;
            }
            let b = if self.rng.random_bool(0.5) {
                "Yes"
            } else {
                "No"
            };
            self.leaf("business", b)?;
            if self.rng.random_bool(0.6) {
                let age = self.rng.random_range(18..80).to_string();
                self.leaf("age", &age)?;
            }
            if self.rng.random_bool(0.8) {
                let income = format!("{:.2}", self.rng.random_range(9000..150000) as f64 / 1.0);
                self.leaf("income", &income)?;
            }
            self.close("profile")?;
        }
        if self.rng.random_bool(0.3) {
            self.open("watches")?;
            for _ in 0..self.rng.random_range(1..=3) {
                let a = self.rng.random_range(0..self.open_auctions.max(1));
                self.leaf("watch", &format!("open_auction{a}"))?;
            }
            self.close("watches")?;
        }
        self.close("person")
    }

    fn open_auctions(&mut self) -> io::Result<()> {
        self.open("open_auctions")?;
        for i in 0..self.open_auctions {
            self.open("open_auction")?;
            self.leaf("id", &format!("open_auction{i}"))?;
            let initial = format!("{:.2}", self.rng.random_range(100..30000) as f64 / 100.0);
            self.leaf("initial", &initial)?;
            if self.rng.random_bool(0.4) {
                let r = format!("{:.2}", self.rng.random_range(100..60000) as f64 / 100.0);
                self.leaf("reserve", &r)?;
            }
            for _ in 0..self.rng.random_range(0..=4) {
                self.open("bidder")?;
                let d = self.date();
                self.leaf("date", &d)?;
                let t = format!(
                    "{:02}:{:02}:{:02}",
                    self.rng.random_range(0..24),
                    self.rng.random_range(0..60),
                    self.rng.random_range(0..60)
                );
                self.leaf("time", &t)?;
                let p = self.rng.random_range(0..self.persons);
                self.leaf("personref", &format!("person{p}"))?;
                let inc = format!("{:.2}", self.rng.random_range(150..3000) as f64 / 100.0);
                self.leaf("increase", &inc)?;
                self.close("bidder")?;
            }
            let cur = format!("{:.2}", self.rng.random_range(100..90000) as f64 / 100.0);
            self.leaf("current", &cur)?;
            let it = self.rng.random_range(0..self.items);
            self.leaf("itemref", &format!("item{it}"))?;
            let s = self.rng.random_range(0..self.persons);
            self.leaf("seller", &format!("person{s}"))?;
            self.open("annotation")?;
            let a = self.rng.random_range(0..self.persons);
            self.leaf("author", &format!("person{a}"))?;
            let d = self.words(8);
            self.leaf("description", &d)?;
            self.close("annotation")?;
            let q = self.rng.random_range(1..=5).to_string();
            self.leaf("quantity", &q)?;
            let ty = if self.rng.random_bool(0.5) {
                "Regular"
            } else {
                "Featured"
            };
            self.leaf("type", ty)?;
            self.open("interval")?;
            let st = self.date();
            self.leaf("start", &st)?;
            let en = self.date();
            self.leaf("end", &en)?;
            self.close("interval")?;
            self.close("open_auction")?;
        }
        self.close("open_auctions")
    }

    fn closed_auctions(&mut self) -> io::Result<()> {
        self.open("closed_auctions")?;
        for _ in 0..self.closed_auctions {
            self.open("closed_auction")?;
            self.open("seller")?;
            let s = self.rng.random_range(0..self.persons);
            self.leaf("person", &format!("person{s}"))?;
            self.close("seller")?;
            self.open("buyer")?;
            let b = self.rng.random_range(0..self.persons);
            self.leaf("person", &format!("person{b}"))?;
            self.close("buyer")?;
            self.open("itemref")?;
            let it = self.rng.random_range(0..self.items);
            self.leaf("item", &format!("item{it}"))?;
            self.close("itemref")?;
            let price = format!("{:.2}", self.rng.random_range(100..90000) as f64 / 100.0);
            self.leaf("price", &price)?;
            let d = self.date();
            self.leaf("date", &d)?;
            let q = self.rng.random_range(1..=5).to_string();
            self.leaf("quantity", &q)?;
            let ty = if self.rng.random_bool(0.5) {
                "Regular"
            } else {
                "Featured"
            };
            self.leaf("type", ty)?;
            self.open("annotation")?;
            let a = self.rng.random_range(0..self.persons);
            self.leaf("author", &format!("person{a}"))?;
            self.open("description")?;
            let n = self.rng.random_range(4..=12);
            let t = self.words(n);
            self.leaf("text", &t)?;
            self.close("description")?;
            self.close("annotation")?;
            self.close("closed_auction")?;
        }
        self.close("closed_auctions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_xml::{Document, TagInterner};

    #[test]
    fn deterministic_per_seed() {
        let cfg = XmarkConfig {
            seed: 7,
            scale: 0.02,
        };
        assert_eq!(generate_string(cfg), generate_string(cfg));
        let other = XmarkConfig {
            seed: 8,
            scale: 0.02,
        };
        assert_ne!(generate_string(cfg), generate_string(other));
    }

    #[test]
    fn wellformed_and_parsable() {
        let xml = generate_string(XmarkConfig {
            seed: 1,
            scale: 0.05,
        });
        let mut tags = TagInterner::new();
        let doc = Document::parse_str(&xml, &mut tags).expect("well-formed");
        let site = doc.document_element().unwrap();
        assert_eq!(tags.name(doc.tag(site).unwrap()), "site");
        let sections: Vec<&str> = doc
            .children(site)
            .iter()
            .map(|&c| tags.name(doc.tag(c).unwrap()))
            .collect();
        assert_eq!(
            sections,
            vec![
                "regions",
                "categories",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn size_targeting_within_tolerance() {
        for target in [64 * 1024, 512 * 1024] {
            let cfg = XmarkConfig::with_target_bytes(target, 3);
            let mut sink = Vec::new();
            let written = generate(cfg, &mut sink).unwrap() as f64;
            let ratio = written / target as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "target {target}, got {written} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn person0_exists_for_q1() {
        let xml = generate_string(XmarkConfig {
            seed: 5,
            scale: 0.02,
        });
        assert!(xml.contains("<id>person0</id>"));
    }

    #[test]
    fn australia_has_items_for_q13() {
        let xml = generate_string(XmarkConfig {
            seed: 5,
            scale: 0.1,
        });
        let aus_start = xml.find("<australia>").unwrap();
        let aus_end = xml.find("</australia>").unwrap();
        assert!(xml[aus_start..aus_end].contains("<item>"));
    }

    #[test]
    fn incomes_cover_q20_brackets() {
        let xml = generate_string(XmarkConfig {
            seed: 5,
            scale: 0.3,
        });
        let incomes: Vec<f64> = xml
            .match_indices("<income>")
            .map(|(i, _)| {
                let rest = &xml[i + 8..];
                let end = rest.find('<').unwrap();
                rest[..end].parse::<f64>().unwrap()
            })
            .collect();
        assert!(incomes.iter().any(|&v| v >= 100_000.0), "preferred bracket");
        assert!(
            incomes.iter().any(|&v| (30_000.0..100_000.0).contains(&v)),
            "standard bracket"
        );
        assert!(incomes.iter().any(|&v| v < 30_000.0), "challenge bracket");
    }

    #[test]
    fn no_attributes_anywhere() {
        let xml = generate_string(XmarkConfig {
            seed: 2,
            scale: 0.05,
        });
        assert!(
            !xml.contains('='),
            "attribute-free output (paper adaptation)"
        );
    }

    #[test]
    fn streaming_generation_to_sink() {
        use std::io::Write;
        struct NullSink(u64);
        impl Write for NullSink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0 += b.len() as u64;
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = NullSink(0);
        let n = generate(XmarkConfig::with_target_bytes(256 * 1024, 9), &mut sink).unwrap();
        assert_eq!(n, sink.0);
    }
}
