//! The benchmark queries of paper §7 (Table 1), adapted to the XQ
//! fragment exactly as the paper describes: "we converted XML attributes
//! into subelements, replaced aggregations such as count($x) by outputting
//! the value of $x instead and rewrote multi step paths in for-loops to
//! single step paths" (the parser performs the multi-step rewriting
//! automatically).

/// XMark Q1 — "Return the name of the person with ID person0."
/// Attribute `@id` is the `id` subelement after conversion.
pub const Q1: &str = r#"<q1>{
  for $p in /site/people/person return
    if ($p/id = "person0") then $p/name/text() else ()
}</q1>"#;

/// XMark Q6 — "How many items are listed on all continents?" with the
/// aggregation replaced by outputting the matched items. Exercises the
/// descendant axis (the paper notes FluXQuery cannot run this one).
pub const Q6: &str = r#"<q6>{
  for $b in /site/regions return
    for $i in $b//item return $i/name
}</q6>"#;

/// XMark Q8 — "List the names of persons and the number of items they
/// bought" — the count is replaced by outputting the matched auction
/// prices; the join is a nested-loop join as in the paper's prototype.
pub const Q8: &str = r#"<q8>{
  for $p in /site/people/person return
    <item>{
      ($p/name,
       for $t in /site/closed_auctions/closed_auction return
         for $b in $t/buyer return
           if ($b/person = $p/id) then $t/price else ())
    }</item>
}</q8>"#;

/// XMark Q13 — "List the names of items registered in Australia along
/// with their descriptions."
pub const Q13: &str = r#"<q13>{
  for $i in /site/regions/australia/item return
    <item2>{ ($i/name, $i/description) }</item2>
}</q13>"#;

/// Q20 from the FluXQuery distribution \[7\] (income brackets), with the
/// counts replaced by outputting the incomes, single-pass so the query
/// streams with constant memory (matching the paper's measurements).
pub const Q20: &str = r#"<q20>{
  for $p in /site/people/person return
    ((for $f in $p/profile return
       (if ($f/income >= 100000) then <preferred>{ $f/income }</preferred> else (),
        if ($f/income < 100000 and $f/income >= 30000) then <standard>{ $f/income }</standard> else (),
        if ($f/income < 30000) then <challenge>{ $f/income }</challenge> else ())),
     if (not(exists($p/profile))) then <na>{ $p/name }</na> else ())
}</q20>"#;

/// All benchmark queries with their Table 1 labels.
pub const ALL: &[(&str, &str)] = &[
    ("Q1", Q1),
    ("Q6", Q6),
    ("Q8", Q8),
    ("Q13", Q13),
    ("Q20", Q20),
];

/// Looks a query up by its (case-insensitive) label.
pub fn by_name(name: &str) -> Option<&'static str> {
    ALL.iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|&(_, q)| q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile_default;
    use gcx_xml::TagInterner;

    #[test]
    fn all_queries_compile() {
        for (name, q) in ALL {
            let mut tags = TagInterner::new();
            compile_default(q, &mut tags)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("q8").is_some());
        assert!(by_name("Q13").is_some());
        assert!(by_name("q99").is_none());
    }

    #[test]
    fn q6_uses_descendant_axis() {
        let mut tags = TagInterner::new();
        let c = compile_default(Q6, &mut tags).unwrap();
        let pretty = gcx_query::pretty_query(&c.original, &tags);
        assert!(pretty.contains("//item"), "got {pretty}");
    }

    #[test]
    fn q8_has_join_condition() {
        let mut tags = TagInterner::new();
        let c = compile_default(Q8, &mut tags).unwrap();
        let mut joins = 0;
        c.original.body.visit(&mut |e| {
            if let gcx_query::Expr::If { cond, .. } = e {
                cond.visit(&mut |cc| {
                    if matches!(cc, gcx_query::Cond::CmpVar { .. }) {
                        joins += 1;
                    }
                });
            }
        });
        assert_eq!(joins, 1);
    }

    #[test]
    fn q1_projection_uses_positional_witness() {
        let mut tags = TagInterner::new();
        let c = compile_default(Q1, &mut tags).unwrap();
        // Q1 has a comparison (id) — no exists, so no positional predicate,
        // and the matcher may run in DFA mode.
        assert!(!c.projection.tree.has_positional());
    }

    #[test]
    fn q20_has_positional_witness() {
        let mut tags = TagInterner::new();
        let c = compile_default(Q20, &mut tags).unwrap();
        // not(exists($p/profile)) introduces a [position()=1] node.
        assert!(c.projection.tree.has_positional());
    }
}
