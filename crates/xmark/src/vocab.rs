//! Vocabulary for the XMark-like generator: word lists, names, countries
//! and categories, loosely modeled on the original xmlgen tables.

/// Filler words for text content (a Shakespeare-flavored sample, as in the
/// original XMark generator).
pub const WORDS: &[&str] = &[
    "officer",
    "embrace",
    "such",
    "fears",
    "distinction",
    "proud",
    "nest",
    "flatter",
    "hour",
    "holds",
    "speak",
    "petty",
    "honour",
    "souls",
    "purse",
    "slave",
    "perjury",
    "sovereign",
    "deceit",
    "sword",
    "present",
    "majesty",
    "haste",
    "protest",
    "crown",
    "remorse",
    "entreat",
    "gentle",
    "whisper",
    "traitor",
    "virtue",
    "gracious",
    "banish",
    "sorrow",
    "tyrant",
    "council",
    "herald",
    "garden",
    "exile",
    "fortune",
    "quarrel",
    "mirth",
    "pledge",
    "scorn",
    "lament",
    "plague",
    "summon",
    "throne",
    "vassal",
    "yield",
    "zeal",
    "ambush",
    "beacon",
    "candle",
    "dagger",
    "ember",
    "falcon",
    "gallant",
    "harbor",
    "ivory",
    "jester",
    "kindle",
    "lantern",
    "meadow",
    "noble",
    "oath",
    "parley",
    "quill",
    "rampart",
    "sentry",
    "tempest",
    "usurp",
    "valor",
    "wager",
    "crest",
    "shield",
    "banner",
    "march",
    "siege",
    "treaty",
];

/// First names for persons.
pub const FIRST_NAMES: &[&str] = &[
    "Magdalena",
    "Reinhold",
    "Yukiko",
    "Amit",
    "Benedikt",
    "Carla",
    "Dmitri",
    "Eileen",
    "Farid",
    "Greta",
    "Hiro",
    "Ingrid",
    "Jorge",
    "Katrin",
    "Luis",
    "Mira",
    "Nils",
    "Olga",
    "Pavel",
    "Quentin",
    "Rosa",
    "Stefan",
    "Tamar",
    "Umberto",
    "Vera",
    "Wolfgang",
    "Xenia",
    "Yann",
    "Zoe",
    "Anand",
    "Bettina",
    "Cosimo",
];

/// Last names for persons.
pub const LAST_NAMES: &[&str] = &[
    "Schmidt",
    "Scherzinger",
    "Koch",
    "Okafor",
    "Tanaka",
    "Novak",
    "Rossi",
    "Dubois",
    "Kovacs",
    "Silva",
    "Jensen",
    "Petrov",
    "Garcia",
    "Muller",
    "Lindgren",
    "Moreau",
    "Haddad",
    "Olsen",
    "Weber",
    "Costa",
    "Bauer",
    "Fischer",
    "Keller",
    "Vogel",
    "Brandt",
    "Sato",
    "Yamada",
    "Johansson",
    "Andersen",
    "Virtanen",
];

/// Countries for addresses.
pub const COUNTRIES: &[&str] = &[
    "Germany",
    "Japan",
    "Brazil",
    "Canada",
    "Kenya",
    "Norway",
    "India",
    "France",
    "Chile",
    "Austria",
    "Finland",
    "Portugal",
    "Vietnam",
    "Morocco",
    "Iceland",
    "United States",
];

/// Cities for addresses.
pub const CITIES: &[&str] = &[
    "Saarbruecken",
    "Kyoto",
    "Porto",
    "Helsinki",
    "Nairobi",
    "Montreal",
    "Valparaiso",
    "Graz",
    "Bergen",
    "Pune",
    "Lyon",
    "Rabat",
    "Hanoi",
    "Reykjavik",
    "Dresden",
    "Tampere",
];

/// Category name fragments.
pub const CATEGORY_THEMES: &[&str] = &[
    "antiques",
    "books",
    "cameras",
    "coins",
    "computers",
    "dolls",
    "garden",
    "instruments",
    "jewelry",
    "maps",
    "pottery",
    "stamps",
    "tools",
    "toys",
    "watches",
    "wines",
];

/// The six XMark continents, in document order.
pub const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_nonempty_and_unique() {
        for list in [
            WORDS,
            FIRST_NAMES,
            LAST_NAMES,
            COUNTRIES,
            CITIES,
            CATEGORY_THEMES,
            REGIONS,
        ] {
            assert!(!list.is_empty());
            let mut sorted: Vec<_> = list.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len(), "duplicates in vocab list");
        }
    }

    #[test]
    fn regions_match_xmark() {
        assert_eq!(REGIONS.len(), 6);
        assert_eq!(REGIONS[2], "australia", "Q13 depends on australia");
    }
}
