//! Deterministic, seeded fault injection behind named sites.
//!
//! Production code sprinkles cheap probes at the places where the real
//! world fails — socket reads, evaluator scheduling, budget reservation:
//!
//! ```ignore
//! if gcx_faults::fire("net.read.err") {
//!     return ReadOutcome::Gone;
//! }
//! ```
//!
//! Without the `chaos` cargo feature every entry point here is an
//! `#[inline(always)]` constant (`false`/`None`), so the probes fold to
//! nothing in default builds. With `--features chaos` a schedule can be
//! installed two ways:
//!
//! * the `GCX_FAULTS` environment variable, read once on first use:
//!   `GCX_FAULTS="<seed>:<site>=<rate>,<site>=<rate>,..."`, e.g.
//!   `GCX_FAULTS="42:net.read.short=0.25,eval.panic=0.05"`;
//! * programmatically via [`configure`] / [`clear`] (tests — the
//!   schedule is process-global, so tests that configure it must
//!   serialize on their own mutex).
//!
//! Rates are probabilities in `[0, 1]`. Draws are **deterministic per
//! `(seed, site, nth-call)`**: each site keeps an atomic call counter
//! and hashes `seed ⊕ fnv1a(site)` with the call index through
//! splitmix64, so a given seed replays the same fault pattern at every
//! site regardless of thread interleaving elsewhere. A failing chaos
//! run prints its seed; re-running with that seed reproduces the exact
//! schedule.
//!
//! The well-known sites threaded through the workspace:
//!
//! | site             | effect                                              |
//! |------------------|-----------------------------------------------------|
//! | `net.read.err`   | socket read reports a hard error                    |
//! | `net.read.short` | socket read truncated to 1 byte                     |
//! | `net.read.eof`   | socket read reports EOF (truncated request body)    |
//! | `net.write.err`  | socket write reports a hard error                   |
//! | `net.write.short`| socket write truncated to 1 byte                    |
//! | `net.accept.err` | accepted connection treated as an accept error      |
//! | `pool.delay`     | evaluator job start delayed 1–8 ms                  |
//! | `eval.panic`     | panic inside the evaluator job                      |
//! | `budget.reject`  | `MemoryBudget::try_reserve` rejects the reservation |

#[cfg(feature = "chaos")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Once, OnceLock, RwLock};
    use std::time::Duration;

    struct Site {
        rate: f64,
        calls: AtomicU64,
        fired: AtomicU64,
    }

    struct Schedule {
        seed: u64,
        sites: HashMap<String, Site>,
    }

    fn registry() -> &'static RwLock<Option<Schedule>> {
        static REG: OnceLock<RwLock<Option<Schedule>>> = OnceLock::new();
        REG.get_or_init(|| RwLock::new(None))
    }

    /// Loads `GCX_FAULTS` exactly once, before the first schedule access,
    /// so a programmatic [`configure`] is never clobbered by the env.
    fn ensure_env() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            if let Ok(spec) = std::env::var("GCX_FAULTS") {
                if let Err(e) = configure_str(&spec) {
                    eprintln!("gcx-faults: ignoring GCX_FAULTS ({e})");
                }
            }
        });
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn splitmix64(seed: u64, n: u64) -> u64 {
        let mut z = seed.wrapping_add(n.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw per-call hash if the site fires on this call, else `None`.
    fn draw(site: &str) -> Option<u64> {
        ensure_env();
        let reg = registry().read().unwrap_or_else(|p| p.into_inner());
        let sched = reg.as_ref()?;
        let s = sched.sites.get(site)?;
        if s.rate <= 0.0 {
            return None;
        }
        let n = s.calls.fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(sched.seed ^ fnv1a(site.as_bytes()), n);
        if s.rate >= 1.0 || unit(h) < s.rate {
            s.fired.fetch_add(1, Ordering::Relaxed);
            Some(h)
        } else {
            None
        }
    }

    /// Whether the named site fires on this call.
    pub fn fire(site: &str) -> bool {
        draw(site).is_some()
    }

    /// A deterministic 1–8 ms delay if the named site fires on this call.
    pub fn delay(site: &str) -> Option<Duration> {
        draw(site).map(|h| Duration::from_millis(1 + (h >> 32) % 8))
    }

    /// Installs a schedule: `sites` is the `<site>=<rate>,...` list.
    pub fn configure(seed: u64, sites: &str) -> Result<(), String> {
        ensure_env();
        let mut map = HashMap::new();
        for entry in sites.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, rate) = entry
                .split_once('=')
                .ok_or_else(|| format!("expected <site>=<rate>, got {entry:?}"))?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| format!("bad rate in {entry:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate out of [0,1] in {entry:?}"));
            }
            map.insert(
                name.trim().to_string(),
                Site {
                    rate,
                    calls: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                },
            );
        }
        if map.is_empty() {
            return Err("empty fault schedule".to_string());
        }
        let mut reg = registry().write().unwrap_or_else(|p| p.into_inner());
        *reg = Some(Schedule { seed, sites: map });
        Ok(())
    }

    /// Parses the full `GCX_FAULTS` form: `<seed>:<site>=<rate>,...`.
    pub fn configure_str(spec: &str) -> Result<(), String> {
        let (seed, sites) = spec
            .split_once(':')
            .ok_or_else(|| "expected <seed>:<site>=<rate>,...".to_string())?;
        let seed = seed.trim();
        let seed: u64 = if let Some(hex) = seed.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| format!("bad seed {seed:?}"))?
        } else {
            seed.parse().map_err(|_| format!("bad seed {seed:?}"))?
        };
        configure(seed, sites)
    }

    /// Removes the schedule: every site goes quiet.
    pub fn clear() {
        ensure_env();
        let mut reg = registry().write().unwrap_or_else(|p| p.into_inner());
        *reg = None;
    }

    /// The active schedule's seed, if one is installed.
    pub fn seed() -> Option<u64> {
        ensure_env();
        let reg = registry().read().unwrap_or_else(|p| p.into_inner());
        reg.as_ref().map(|s| s.seed)
    }

    /// How many times the named site has fired under the active schedule.
    pub fn fired_count(site: &str) -> u64 {
        ensure_env();
        let reg = registry().read().unwrap_or_else(|p| p.into_inner());
        reg.as_ref()
            .and_then(|s| s.sites.get(site))
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }
}

#[cfg(feature = "chaos")]
pub use imp::{clear, configure, configure_str, delay, fire, fired_count, seed};

/// `true` when the `chaos` feature is compiled in.
#[inline(always)]
pub const fn compiled() -> bool {
    cfg!(feature = "chaos")
}

#[cfg(not(feature = "chaos"))]
mod noop {
    use std::time::Duration;

    /// No-op: always `false` without the `chaos` feature.
    #[inline(always)]
    pub fn fire(_site: &str) -> bool {
        false
    }

    /// No-op: always `None` without the `chaos` feature.
    #[inline(always)]
    pub fn delay(_site: &str) -> Option<Duration> {
        None
    }

    /// Errors: schedules require the `chaos` feature.
    pub fn configure(_seed: u64, _sites: &str) -> Result<(), String> {
        Err("gcx-faults built without the chaos feature".to_string())
    }

    /// Errors: schedules require the `chaos` feature.
    pub fn configure_str(_spec: &str) -> Result<(), String> {
        Err("gcx-faults built without the chaos feature".to_string())
    }

    /// No-op without the `chaos` feature.
    #[inline(always)]
    pub fn clear() {}

    /// Always `None` without the `chaos` feature.
    #[inline(always)]
    pub fn seed() -> Option<u64> {
        None
    }

    /// Always `0` without the `chaos` feature.
    #[inline(always)]
    pub fn fired_count(_site: &str) -> u64 {
        0
    }
}

#[cfg(not(feature = "chaos"))]
pub use noop::{clear, configure, configure_str, delay, fire, fired_count, seed};

#[cfg(all(test, not(feature = "chaos")))]
mod noop_tests {
    #[test]
    fn everything_is_inert() {
        assert!(!super::compiled());
        assert!(!super::fire("net.read.err"));
        assert!(super::delay("pool.delay").is_none());
        assert!(super::configure(1, "a=1").is_err());
        assert!(super::seed().is_none());
        assert_eq!(super::fired_count("net.read.err"), 0);
    }
}

#[cfg(all(test, feature = "chaos"))]
mod chaos_tests {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The schedule is process-global; serialize tests that touch it.
    fn lock() -> MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        L.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    fn sequence(site: &str, n: usize) -> Vec<bool> {
        (0..n).map(|_| super::fire(site)).collect()
    }

    #[test]
    fn same_seed_replays_the_same_pattern() {
        let _g = lock();
        super::configure(42, "x=0.5").unwrap();
        let a = sequence("x", 64);
        super::configure(42, "x=0.5").unwrap();
        let b = sequence("x", 64);
        assert_eq!(a, b);
        super::configure(43, "x=0.5").unwrap();
        let c = sequence("x", 64);
        assert_ne!(a, c, "different seeds should diverge");
        super::clear();
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let _g = lock();
        super::configure(7, "never=0,always=1").unwrap();
        assert!(sequence("never", 100).iter().all(|&f| !f));
        assert!(sequence("always", 100).iter().all(|&f| f));
        assert_eq!(super::fired_count("always"), 100);
        assert!(!super::fire("unknown.site"), "unlisted sites never fire");
        super::clear();
        assert!(!super::fire("always"), "cleared schedule is quiet");
    }

    #[test]
    fn mid_rate_fires_roughly_proportionally() {
        let _g = lock();
        super::configure(1234, "p=0.25").unwrap();
        let hits = sequence("p", 1000).iter().filter(|&&f| f).count();
        assert!((150..=350).contains(&hits), "0.25 rate fired {hits}/1000");
        super::clear();
    }

    #[test]
    fn env_style_spec_parses() {
        let _g = lock();
        super::configure_str("0x2a:net.read.short=0.25, eval.panic=0.05").unwrap();
        assert_eq!(super::seed(), Some(42));
        assert!(super::configure_str("nope").is_err());
        assert!(super::configure_str("1:bad").is_err());
        assert!(super::configure_str("1:x=2.0").is_err());
        assert!(super::configure_str("1:").is_err());
        super::clear();
    }

    #[test]
    fn delay_is_bounded() {
        let _g = lock();
        super::configure(9, "d=1").unwrap();
        for _ in 0..50 {
            let d = super::delay("d").expect("rate 1 always fires");
            assert!((1..=8).contains(&d.as_millis()), "{d:?}");
        }
        super::clear();
    }
}
