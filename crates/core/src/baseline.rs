//! The in-memory DOM baseline engine.
//!
//! Models the Galax/Saxon/QizX class of systems from the paper's Table 1:
//! the entire input document is materialized as a DOM, then the query is
//! evaluated over it. Memory therefore grows linearly with the document.
//!
//! The DOM engine also serves as the **semantics oracle** for Theorem 1
//! differential testing: it evaluates the *original* (un-rewritten) query
//! with straightforward recursive semantics, sharing only the comparison
//! helper with the streaming engine.

use crate::engine::RunReport;
use crate::error::EngineError;
use crate::value::compare_values;
use gcx_buffer::BufferStats;
use gcx_query::{Axis, CompiledQuery, Cond, Expr, NodeTest, Step, VarId};
use gcx_xml::{Document, LexerOptions, NodeId, TagInterner, XmlWriter};
use std::io::{Read, Write};
use std::time::Instant;

/// Parses the whole input into a DOM and evaluates the original query.
pub fn run_dom<R: Read, W: Write>(
    compiled: &CompiledQuery,
    tags: &mut TagInterner,
    input: R,
    output: W,
) -> Result<RunReport, EngineError> {
    run_dom_with_options(compiled, tags, input, output, LexerOptions::default())
}

/// As [`run_dom`] with explicit lexer options.
pub fn run_dom_with_options<R: Read, W: Write>(
    compiled: &CompiledQuery,
    tags: &mut TagInterner,
    input: R,
    output: W,
    opts: LexerOptions,
) -> Result<RunReport, EngineError> {
    let start = Instant::now();
    let doc = Document::parse_with_options(input, tags, opts)?;
    let mut writer = XmlWriter::new(output);
    let query = &compiled.original;
    let mut eval = DomEval {
        doc: &doc,
        tags,
        bindings: vec![None; query.vars.len()],
    };
    eval.bindings[VarId::ROOT.index()] = Some(Document::ROOT);
    writer.open(query.root_tag, tags)?;
    eval.eval(&query.body, &mut writer)?;
    writer.close(query.root_tag, tags)?;
    writer.flush()?;
    let bytes = doc.approx_bytes();
    let nodes = doc.len();
    let stats = BufferStats {
        live_nodes: nodes,
        live_bytes: bytes,
        peak_nodes: nodes,
        peak_bytes: bytes,
        nodes_created: nodes as u64,
        ..Default::default()
    };
    Ok(RunReport {
        engine: "dom".into(),
        output_bytes: writer.bytes_written(),
        stats,
        elapsed: start.elapsed(),
        dfa_states: 0,
        tokens_read: 0,
        tokens_skipped: 0,
        bytes_skipped: 0,
        safety: None,
        role_balance: Vec::new(),
        scan_kernel: gcx_xml::scan::kernel_name(),
    })
}

struct DomEval<'a> {
    doc: &'a Document,
    tags: &'a TagInterner,
    bindings: Vec<Option<NodeId>>,
}

impl<'a> DomEval<'a> {
    fn binding(&self, v: VarId) -> NodeId {
        self.bindings[v.index()].expect("variable in scope")
    }

    fn matches(&self, base: NodeId, step: Step) -> Vec<NodeId> {
        let candidates: Vec<NodeId> = match step.axis {
            Axis::Child => self.doc.children(base).to_vec(),
            Axis::Descendant => self.doc.descendants(base),
        };
        candidates
            .into_iter()
            .filter(|&n| match step.test {
                NodeTest::Tag(t) => self.doc.tag(n) == Some(t),
                NodeTest::Star => self.doc.tag(n).is_some(),
                NodeTest::Text => self.doc.is_text(n),
            })
            .collect()
    }

    fn write_node<W: Write>(&self, n: NodeId, w: &mut XmlWriter<W>) -> Result<(), EngineError> {
        let mut toks = Vec::new();
        self.doc.subtree_tokens(n, &mut toks);
        for t in &toks {
            w.write_token(t, self.tags)?;
        }
        Ok(())
    }

    fn eval<W: Write>(&mut self, e: &Expr, w: &mut XmlWriter<W>) -> Result<(), EngineError> {
        match e {
            Expr::Empty => Ok(()),
            Expr::OpenTag(t) => {
                w.open(*t, self.tags)?;
                Ok(())
            }
            Expr::CloseTag(t) => {
                w.close(*t, self.tags)?;
                Ok(())
            }
            Expr::Element { tag, content } => {
                w.open(*tag, self.tags)?;
                self.eval(content, w)?;
                w.close(*tag, self.tags)?;
                Ok(())
            }
            Expr::Sequence(items) => {
                for i in items {
                    self.eval(i, w)?;
                }
                Ok(())
            }
            Expr::VarRef(v) => self.write_node(self.binding(*v), w),
            Expr::PathOutput { var, step } => {
                for n in self.matches(self.binding(*var), *step) {
                    self.write_node(n, w)?;
                }
                Ok(())
            }
            Expr::For {
                var,
                source,
                step,
                body,
            } => {
                for n in self.matches(self.binding(*source), *step) {
                    self.bindings[var.index()] = Some(n);
                    self.eval(body, w)?;
                }
                self.bindings[var.index()] = None;
                Ok(())
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_cond(cond) {
                    self.eval(then_branch, w)
                } else {
                    self.eval(else_branch, w)
                }
            }
            Expr::SignOff { .. } => Ok(()), // oracle ignores buffer updates
        }
    }

    fn eval_cond(&self, c: &Cond) -> bool {
        match c {
            Cond::True => true,
            Cond::Exists { var, step } => !self.matches(self.binding(*var), *step).is_empty(),
            Cond::CmpStr {
                var,
                step,
                op,
                value,
            } => self
                .matches(self.binding(*var), *step)
                .iter()
                .any(|&n| compare_values(&self.doc.string_value(n), value, *op)),
            Cond::CmpVar {
                left_var,
                left_step,
                op,
                right_var,
                right_step,
            } => {
                let left = self.matches(self.binding(*left_var), *left_step);
                let right = self.matches(self.binding(*right_var), *right_step);
                left.iter().any(|&l| {
                    let lv = self.doc.string_value(l);
                    right
                        .iter()
                        .any(|&r| compare_values(&lv, &self.doc.string_value(r), *op))
                })
            }
            Cond::And(a, b) => self.eval_cond(a) && self.eval_cond(b),
            Cond::Or(a, b) => self.eval_cond(a) || self.eval_cond(b),
            Cond::Not(inner) => !self.eval_cond(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile_default;

    fn dom_output(query: &str, doc: &str) -> String {
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).expect("compile");
        let mut out = Vec::new();
        run_dom(&compiled, &mut tags, doc.as_bytes(), &mut out).expect("run");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn simple_query() {
        let out = dom_output(
            "<r>{ for $b in /bib/book return $b/title }</r>",
            "<bib><book><title>A</title></book><book><title>B</title></book></bib>",
        );
        assert_eq!(out, "<r><title>A</title><title>B</title></r>");
    }

    #[test]
    fn conditions_and_joins() {
        let out = dom_output(
            r#"<r>{ for $p in /db/p return for $s in /db/s return
                if ($s/ref = $p/id) then $p/name else () }</r>"#,
            "<db><p><id>1</id><name>A</name></p><s><ref>1</ref></s><s><ref>9</ref></s></db>",
        );
        assert_eq!(out, "<r><name>A</name></r>");
    }

    #[test]
    fn reports_document_footprint() {
        let mut tags = TagInterner::new();
        let compiled = compile_default("<r>{ for $x in /a/b return $x }</r>", &mut tags).unwrap();
        let mut out = Vec::new();
        let report = run_dom(
            &compiled,
            &mut tags,
            "<a><b/><b/><c/></a>".as_bytes(),
            &mut out,
        )
        .unwrap();
        assert_eq!(report.engine, "dom");
        assert!(report.stats.peak_bytes > 0);
        assert_eq!(report.stats.peak_nodes, 5, "root + a + b + b + c");
    }
}
