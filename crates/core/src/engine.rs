//! The GCX engine: pull-based streaming XQuery evaluation with active
//! garbage collection (paper Fig. 11 and §5/§6).
//!
//! The engine evaluates the *rewritten* query strictly sequentially. When
//! evaluation needs data that is not buffered yet — the next binding of a
//! for-loop, the subtree of a node being output, a condition witness — it
//! pumps the [`Preprojector`] token by token until the data is available
//! (or provably absent). Every `signOff($x/π, r)` encountered is
//! forwarded to the buffer manager, which performs the role update and the
//! localized garbage collection of Fig. 10.
//!
//! ## The step machine
//!
//! Evaluation is a **resumable step machine**, not a recursive descent:
//! the would-be call stack is an explicit [`Frame`] stack held in the
//! engine struct, and [`GcxEngine::step`] runs a bounded number of frame
//! executions / pump events before returning a [`StepOutcome`]. Nothing
//! ever blocks inside evaluation: a non-blocking input that runs dry
//! surfaces as [`StepOutcome::NeedInput`] (the lexer has rewound to a
//! construct boundary — see `gcx_xml`'s non-blocking reader contract),
//! a full output sink as [`StepOutcome::OutputBackpressure`] (via the
//! [`GcxEngine::set_output_gate`] probe), and an exhausted budget as
//! [`StepOutcome::Yielded`]. A scheduler can therefore multiplex
//! thousands of engines over a handful of threads, each suspended
//! engine holding only its frames + buffer — a few KB. The classic
//! blocking [`GcxEngine::run`] is a thin loop over `step`.
//!
//! The same evaluator also powers two baselines (paper §7 comparisons):
//! with `gc: false` signOffs are ignored (static analysis only), and with
//! `preload: true` the whole projected document is materialized before
//! evaluation (Galax-style projection \[13\]).

use crate::error::EngineError;
use crate::metrics::EngineStageMetrics;
use crate::preproject::{Preprojector, PumpEvent};
use crate::value::compare_values;
use gcx_buffer::{BufNodeId, BufferStats, BufferTree};
use gcx_obs::log_debug;
use gcx_projection::{PStep, PTest, Pred, RelPath, Role};
use gcx_query::{Axis, CompiledQuery, Cond, Expr, NodeTest, Step, VarId};
use gcx_xml::{LexerOptions, TagId, TagInterner, XmlLexer, XmlWriter};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cooperative-cancellation handle.
///
/// Clone the flag, hand one clone to [`GcxEngine::set_cancel_flag`] and
/// keep the other; calling [`CancelFlag::cancel`] from any thread makes
/// the running engine return [`EngineError::Cancelled`] at its next pump
/// step or loop iteration. The check is a relaxed atomic load — cheap
/// enough for the hot path.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Engine configuration (the evaluation strategies of Table 1).
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Execute signOff statements (active garbage collection). `false`
    /// turns the engine into the static-analysis-only baseline.
    pub gc: bool,
    /// Materialize the full projected document before evaluating
    /// (Galax-style static projection \[13\]).
    pub preload: bool,
    /// Skip dead subtrees with the lexer's raw byte scanner instead of
    /// pumping them event by event (on by default; the per-event path is
    /// kept for differential tests and ablations — both produce
    /// identical output and buffer states).
    pub skip_lexing: bool,
    /// Lexer options for the input stream.
    pub lexer: LexerOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            gc: true,
            preload: false,
            skip_lexing: true,
            lexer: LexerOptions::default(),
        }
    }
}

/// A trace event (paper Fig. 2 reproduction).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// What happened (`read <book>`, `signOff($x, r3)`, …).
    pub label: String,
    /// Rendering of the live buffer, Fig. 2 style.
    pub buffer: String,
}

type Tracer = Box<dyn FnMut(&TraceEvent) + Send>;

/// Log target for the evaluator (`GCX_LOG=gcx_core::engine=debug`).
const LOG_TARGET: &str = "gcx_core::engine";

/// Output (`emit`) stage sampling interval: one timed `write_subtree`
/// per N. Emits are far rarer than pump events, so they sample denser.
const EMIT_SAMPLE_EVERY: u32 = 16;

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine label (for tables).
    pub engine: String,
    /// Bytes of XML output produced.
    pub output_bytes: u64,
    /// Buffer statistics including the peak footprint.
    pub stats: BufferStats,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
    /// Lazy-DFA states constructed (0 in NFA mode).
    pub dfa_states: usize,
    /// Input tokens read / skipped by the preprojector. Tokens inside
    /// raw-skipped dead subtrees are never materialized and appear only
    /// in `bytes_skipped`.
    pub tokens_read: u64,
    pub tokens_skipped: u64,
    /// Input bytes consumed by skip-mode lexing (dead subtrees scanned
    /// as raw bytes; 0 when `skip_lexing` is off or nothing was dead).
    pub bytes_skipped: u64,
    /// `Some(true)` when GC ran and every assigned role instance was
    /// removed (paper safety requirement 2 + Theorem 1 precondition).
    pub safety: Option<bool>,
    /// Per-role (assigned, removed) instance counters, indexed by role id
    /// (diagnostics; empty for the DOM baseline).
    pub role_balance: Vec<(u64, u64)>,
    /// Byte-scanning kernel the lexer ran with (`scalar`, `swar`,
    /// `sse2` or `avx2`) — makes perf numbers attributable.
    pub scan_kernel: &'static str,
}

/// Cursor over the matches of one step, relative to a base node. The
/// current scan position is pinned in the buffer so that active GC cannot
/// invalidate navigation (see DESIGN.md, "cursor pinning").
struct Cursor {
    base: BufNodeId,
    step: Step,
    mark: Option<BufNodeId>,
    done: bool,
}

impl Cursor {
    fn new(base: BufNodeId, step: Step) -> Self {
        Cursor {
            base,
            step,
            mark: None,
            done: false,
        }
    }
}

/// What one [`GcxEngine::step`] slice ended with.
///
/// Everything except `Finished`/`Err` means "call `step` again later":
/// after feeding input (`NeedInput`), after draining output
/// (`OutputBackpressure`), or whenever the scheduler next gets to this
/// engine (`Yielded` — the budget ran out mid-evaluation).
#[derive(Debug)]
pub enum StepOutcome {
    /// The (non-blocking) input has no bytes available. All state is
    /// parked in the engine; retry once more input arrives and
    /// evaluation resumes exactly where it left off.
    NeedInput,
    /// The output gate ([`GcxEngine::set_output_gate`]) refused: the
    /// sink needs draining before evaluation continues. No work ran.
    OutputBackpressure,
    /// The step budget was exhausted mid-evaluation (fairness yield).
    Yielded,
    /// The run completed; the report is final.
    Finished(RunReport),
    /// The run failed; further `step` calls are a contract error.
    Err(EngineError),
}

/// One fueled cursor advance (see [`GcxEngine::cursor_next_fuel`]).
enum CursorStep {
    Found(BufNodeId),
    End,
    OutOfFuel,
}

/// One suspended activation of the evaluator — the explicit-stack
/// replacement for what recursive `eval`/`eval_cond` held on the call
/// stack. Frames are pushed in reverse execution order (top of
/// `GcxEngine::frames` runs first); a frame that runs out of fuel or
/// hits `NeedInput` pushes itself back (with its mutated state) before
/// returning, which is what makes every suspension point resumable.
enum Frame<'q> {
    /// Materialize the whole projected document (static-projection
    /// baseline) before evaluation starts.
    Preload,
    /// Open the output root element.
    Begin,
    /// Close the output root and flush the sink.
    End,
    /// Evaluate an expression (dispatches to the frames below).
    Eval(&'q Expr),
    /// A sequence, about to evaluate `items[idx]`.
    Seq { items: &'q [Expr], idx: usize },
    /// Emit a closing tag after an element's content frame finished.
    CloseTag(TagId),
    /// Emit a variable binding's subtree once it is finished.
    VarEmit { node: BufNodeId },
    /// Emit every match of a path step (`$x/π` in output position);
    /// `emit` holds a found-but-not-yet-finished match.
    PathOut {
        cur: Cursor,
        emit: Option<BufNodeId>,
    },
    /// A for-loop between iterations: advance the cursor, bind, and
    /// evaluate the body once per match.
    ForLoop {
        var: VarId,
        body: &'q Expr,
        cur: Cursor,
    },
    /// Pick the branch once the condition frames left their verdict in
    /// `cond_reg`.
    IfBranch {
        then_branch: &'q Expr,
        else_branch: &'q Expr,
    },
    /// Evaluate a condition into `cond_reg`.
    Cond(&'q Cond),
    /// Short-circuit `and`: run the right side only if `cond_reg`.
    CondAnd(&'q Cond),
    /// Short-circuit `or`: run the right side only if `!cond_reg`.
    CondOr(&'q Cond),
    /// Negate `cond_reg`.
    CondNot,
    /// An exists-check mid-scan.
    CondExists { cur: Cursor },
    /// A comparison condition waiting for its base subtree(s) to finish.
    CondPump(&'q Cond),
    /// A `signOff($x/π, r)` waiting for the base subtree to finish.
    SignOff {
        base: BufNodeId,
        path: &'q RelPath,
        role: Role,
    },
}

/// The streaming engine. Construct via [`run_gcx`] and friends (module
/// functions below) unless you need custom wiring.
pub struct GcxEngine<'t, 'q, R: Read, W: Write> {
    compiled: &'q CompiledQuery,
    projector: Preprojector<'t, 'q, R>,
    buffer: BufferTree,
    writer: XmlWriter<W>,
    bindings: Vec<Option<BufNodeId>>,
    gc: bool,
    preload: bool,
    tracer: Option<Tracer>,
    cancel: Option<CancelFlag>,
    /// Debug-level logging for this engine's target, hoisted once at
    /// construction — even the logger's filter lookup is too much for a
    /// tight for-loop body.
    debug: bool,
    /// Sampled per-stage timing sink; the pump stages live in the
    /// projector, the engine itself times `emit` (output subtrees).
    stage_metrics: Option<Arc<EngineStageMetrics>>,
    emit_tick: u32,
    /// Request-scoped flight recorder + trace ID (emit spans; the pump
    /// stages record in the projector, buffer events in the buffer).
    flight: Option<(Arc<gcx_obs::FlightRecorder>, u64)>,
    /// Reusable scratch (see "Evaluator allocation discipline" below):
    /// nodes matched by a comparison step, a node's string value, and the
    /// signOff path frontier/next sets. Taken/restored around use so the
    /// borrow checker allows buffer access in between; capacities stick.
    cmp_nodes: Vec<BufNodeId>,
    cmp_text: String,
    path_frontier: Vec<(BufNodeId, u32)>,
    path_next: Vec<(BufNodeId, u32)>,
    /// The explicit evaluation stack (see [`Frame`]): empty before the
    /// first step and after the run ends.
    frames: Vec<Frame<'q>>,
    /// Condition result register: `Cond*` frames leave their verdict
    /// here for the consuming frame ([`Frame::IfBranch`] etc.).
    cond_reg: bool,
    /// The first step ran (root bound, initial frames pushed).
    started: bool,
    /// The run finished or failed; further `step` calls are an error.
    complete: bool,
    /// Evaluation wall-clock accumulated across step slices. Time
    /// parked *between* steps belongs to the scheduler, not the query.
    run_elapsed: Duration,
    /// Output readiness probe: when installed and returning `false`,
    /// `step` returns [`StepOutcome::OutputBackpressure`] immediately.
    output_gate: Option<Box<dyn Fn() -> bool + Send>>,
}

impl<'t, 'q, R: Read, W: Write> GcxEngine<'t, 'q, R, W> {
    /// Wires up an engine over an input stream and an output sink.
    pub fn new(
        compiled: &'q CompiledQuery,
        tags: &'t mut TagInterner,
        input: R,
        output: W,
        options: EngineOptions,
    ) -> Self {
        let mut buffer = BufferTree::new(compiled.roles.len(), &compiled.projection.aggregates);
        let lexer = XmlLexer::with_options(input, tags, options.lexer);
        let mut projector = Preprojector::new(lexer, &compiled.projection.tree, &mut buffer);
        projector.set_skip_lexing(options.skip_lexing);
        let writer = XmlWriter::new(output);
        let bindings = vec![None; compiled.rewritten.vars.len()];
        GcxEngine {
            compiled,
            projector,
            buffer,
            writer,
            bindings,
            gc: options.gc,
            preload: options.preload,
            tracer: None,
            cancel: None,
            debug: gcx_obs::log::enabled(gcx_obs::Level::Debug, LOG_TARGET),
            stage_metrics: None,
            emit_tick: 0,
            flight: None,
            cmp_nodes: Vec::new(),
            cmp_text: String::new(),
            path_frontier: Vec::new(),
            path_next: Vec::new(),
            frames: Vec::new(),
            cond_reg: false,
            started: false,
            complete: false,
            run_elapsed: Duration::ZERO,
            output_gate: None,
        }
    }

    /// Installs a trace callback (Fig. 2 reproduction). Expensive: the
    /// buffer is rendered on every event.
    pub fn set_tracer(&mut self, t: Tracer) {
        self.tracer = Some(t);
    }

    /// Installs a cooperative-cancellation flag. When the flag is
    /// cancelled from another thread, the run aborts with
    /// [`EngineError::Cancelled`] at the next pump step or for-loop
    /// iteration.
    pub fn set_cancel_flag(&mut self, flag: CancelFlag) {
        self.cancel = Some(flag);
    }

    /// Installs a shared, atomically updated mirror of the buffer's live
    /// footprint so other threads can sample [`gcx_buffer::BufferStats`]
    /// figures *mid-run* (live observability; the `RunReport` only exists
    /// once the run completes).
    pub fn set_live_stats(&mut self, live: Arc<gcx_buffer::LiveBufferStats>) {
        self.buffer.set_live_stats(live);
    }

    /// Installs a shared accounting hook charged for the engine buffer's
    /// footprint (buffered nodes + text payload). When the hook refuses a
    /// reservation the run fails with a budget-exceeded
    /// [`EngineError::Buffer`] instead of growing without bound.
    pub fn set_buffer_accounting(&mut self, accounting: Arc<dyn gcx_buffer::BufferAccounting>) {
        self.buffer.set_accounting(accounting);
    }

    /// Installs sampled per-stage timing (see [`crate::metrics`]): every
    /// `sample_every`th pump step is timed into `metrics` stage by
    /// stage, plus one in [`EMIT_SAMPLE_EVERY`] output subtrees. The
    /// histograms are wait-free, so one shared `Arc` serves every
    /// concurrent session of a server.
    pub fn set_stage_metrics(&mut self, metrics: Arc<EngineStageMetrics>, sample_every: u32) {
        self.projector
            .set_stage_metrics(metrics.clone(), sample_every);
        self.stage_metrics = Some(metrics);
    }

    /// Installs a request-scoped flight recorder under `trace_id` across
    /// the whole engine: pump-stage spans (projector), buffer events
    /// stamped with the input byte offset (buffer tree), and emit spans
    /// (here). Sampling cadence follows [`Self::set_stage_metrics`] for
    /// the pump stages and [`EMIT_SAMPLE_EVERY`] for emits.
    pub fn set_flight_recorder(&mut self, recorder: Arc<gcx_obs::FlightRecorder>, trace_id: u64) {
        self.projector
            .set_flight_recorder(recorder.clone(), trace_id);
        self.buffer.set_flight_recorder(recorder.clone(), trace_id);
        self.flight = Some((recorder, trace_id));
    }

    /// Starts an emit-stage timer for one in [`EMIT_SAMPLE_EVERY`]
    /// `write_subtree` calls (None when metrics are off or not sampled).
    #[inline]
    fn emit_timer(&mut self) -> Option<Instant> {
        if self.stage_metrics.is_none() && self.flight.is_none() {
            return None;
        }
        self.emit_tick += 1;
        if self.emit_tick >= EMIT_SAMPLE_EVERY {
            self.emit_tick = 0;
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn record_emit(&self, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        let dur = t0.elapsed();
        if let Some(m) = &self.stage_metrics {
            m.emit.record(dur);
        }
        if let Some((rec, tid)) = &self.flight {
            let dur_ns = dur.as_nanos() as u64;
            let start = rec.now_ns().saturating_sub(dur_ns);
            rec.record_span(*tid, gcx_obs::SpanKind::Emit, start, dur_ns, 0);
        }
    }

    #[inline]
    fn check_cancelled(&self) -> Result<(), EngineError> {
        match &self.cancel {
            Some(c) if c.is_cancelled() => Err(EngineError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Installs an output readiness probe. While the probe returns
    /// `false`, [`Self::step`] returns
    /// [`StepOutcome::OutputBackpressure`] without running — the
    /// scheduler parks the session until the net layer drains the sink.
    /// The probe is checked only at step boundaries, so a step that was
    /// already running can overshoot by at most one budget's worth of
    /// output. Do not combine with the blocking [`Self::run`] (which
    /// would spin on a closed gate).
    pub fn set_output_gate(&mut self, gate: Box<dyn Fn() -> bool + Send>) {
        self.output_gate = Some(gate);
    }

    /// Runs at most `budget` frame executions / pump events and returns
    /// what stopped the slice. All evaluation state lives in the engine
    /// struct between calls — no thread ever parks inside. `budget` is
    /// clamped to ≥ 1 so every step makes progress.
    pub fn step(&mut self, budget: u32) -> StepOutcome {
        if self.complete {
            return StepOutcome::Err(EngineError::MissingData(
                "step() called after the run already completed".into(),
            ));
        }
        if let Some(gate) = &self.output_gate {
            if !gate() {
                return StepOutcome::OutputBackpressure;
            }
        }
        let budget = budget.max(1);
        let t0 = Instant::now();
        let result = self.drive(budget);
        let slice = t0.elapsed();
        self.run_elapsed += slice;
        match result {
            Ok(Some(mut report)) => {
                self.complete = true;
                // `build_report` ran inside `drive`, before this slice
                // was added to the total — patch the final figure in.
                report.elapsed = self.run_elapsed;
                StepOutcome::Finished(report)
            }
            Ok(None) => {
                // A yield always means the fuel ran dry, so the slice
                // consumed exactly `budget` events.
                if let Some((rec, tid)) = &self.flight {
                    let dur_ns = slice.as_nanos() as u64;
                    let start = rec.now_ns().saturating_sub(dur_ns);
                    rec.record_span(*tid, gcx_obs::SpanKind::Yield, start, dur_ns, budget as u64);
                }
                StepOutcome::Yielded
            }
            Err(e) if e.is_need_input() => StepOutcome::NeedInput,
            Err(e) => {
                self.complete = true;
                StepOutcome::Err(e)
            }
        }
    }

    /// Runs the query to completion over blocking input/output: a thin
    /// loop over [`Self::step`]. A blocking reader never yields
    /// `WouldBlock`, so `NeedInput` here means the caller wired a
    /// non-blocking source into the blocking entry point.
    pub fn run(mut self) -> Result<RunReport, EngineError> {
        loop {
            match self.step(u32::MAX) {
                StepOutcome::Finished(r) => return Ok(r),
                StepOutcome::Yielded | StepOutcome::OutputBackpressure => {}
                StepOutcome::NeedInput => {
                    return Err(EngineError::MissingData(
                        "non-blocking input ran dry inside a blocking run".into(),
                    ))
                }
                StepOutcome::Err(e) => return Err(e),
            }
        }
    }

    /// The step-machine driver: pops and executes frames until the
    /// stack empties (`Ok(Some(report))`), the fuel runs out
    /// (`Ok(None)` — the interrupted frame has pushed itself back), or
    /// evaluation fails (`Err`; on `NeedInput` the interrupted frame is
    /// back on the stack and the call is retryable).
    fn drive(&mut self, mut fuel: u32) -> Result<Option<RunReport>, EngineError> {
        if !self.started {
            self.started = true;
            self.bindings[VarId::ROOT.index()] = Some(BufferTree::ROOT);
            // `compiled` outlives the engine ('q): borrow the body
            // instead of deep-cloning the expression tree per run.
            let body: &'q Expr = &self.compiled.rewritten.body;
            self.frames.push(Frame::End);
            self.frames.push(Frame::Eval(body));
            self.frames.push(Frame::Begin);
            if self.preload {
                self.frames.push(Frame::Preload);
            }
        }
        loop {
            let Some(frame) = self.frames.pop() else {
                return Ok(Some(self.build_report()));
            };
            if fuel == 0 {
                self.frames.push(frame);
                return Ok(None);
            }
            fuel -= 1;
            self.exec_frame(frame, &mut fuel)?;
        }
    }

    fn build_report(&mut self) -> RunReport {
        let safety = if self.gc {
            Some(self.buffer.all_roles_returned())
        } else {
            None
        };
        let role_balance = self
            .compiled
            .roles
            .roles()
            .map(|r| self.buffer.role_accounting(r))
            .collect();
        RunReport {
            engine: if self.preload {
                "static-projection".into()
            } else if self.gc {
                "gcx".into()
            } else {
                "no-gc-streaming".into()
            },
            output_bytes: self.writer.bytes_written(),
            stats: self.buffer.stats().clone(),
            elapsed: self.run_elapsed,
            dfa_states: self.projector.dfa_states(),
            tokens_read: self.projector.tokens_read,
            tokens_skipped: self.projector.tokens_skipped,
            bytes_skipped: self.projector.bytes_skipped(),
            safety,
            role_balance,
            scan_kernel: gcx_xml::scan::kernel_name(),
        }
    }

    /// Access to the buffer (tests and traces).
    pub fn buffer(&self) -> &BufferTree {
        &self.buffer
    }

    // ------------------------------------------------------------------
    // Pumping
    // ------------------------------------------------------------------

    fn pump_step(&mut self) -> Result<PumpEvent, EngineError> {
        self.check_cancelled()?;
        let ev = self.projector.pump(&mut self.buffer)?;
        if self.tracer.is_some() {
            let label = match ev {
                PumpEvent::Buffered(n) => format!("read+buffer node {}", n.0),
                PumpEvent::Closed(n) => format!("close node {}", n.0),
                PumpEvent::Skipped => "skip token".into(),
                PumpEvent::Eof => "eof".into(),
            };
            self.trace(&label);
        }
        Ok(ev)
    }

    fn trace(&mut self, label: &str) {
        if let Some(t) = &mut self.tracer {
            let ev = TraceEvent {
                label: label.to_string(),
                buffer: self.buffer.render(self.projector.tags()),
            };
            t(&ev);
        }
    }

    /// Pumps until `node`'s closing tag has been processed, charging
    /// one fuel per pump event. Returns `Ok(false)` when the fuel ran
    /// out first. At least one pump happens per call even with no fuel
    /// left: the frame-dispatch charge in `drive` can drain the budget
    /// before the frame's real work starts, and a work loop that then
    /// refuses to work would re-suspend identically forever — every
    /// step must make progress (overshoot is bounded by one event).
    fn pump_finish_fuel(&mut self, node: BufNodeId, fuel: &mut u32) -> Result<bool, EngineError> {
        while !self.buffer.is_finished(node) {
            if self.pump_step()? == PumpEvent::Eof && !self.buffer.is_finished(node) {
                return Err(EngineError::MissingData(
                    "input ended before an open element finished".into(),
                ));
            }
            *fuel = fuel.saturating_sub(1);
            if *fuel == 0 && !self.buffer.is_finished(node) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Cursors
    // ------------------------------------------------------------------

    fn node_matches(&self, n: BufNodeId, test: NodeTest) -> bool {
        match test {
            NodeTest::Tag(t) => self.buffer.tag(n) == Some(t),
            NodeTest::Star => self.buffer.tag(n).is_some(),
            NodeTest::Text => self.buffer.is_text(n),
        }
    }

    /// Advances a cursor to its next match, pumping the input as needed
    /// (this is where the evaluator "blocks" in the paper's terms —
    /// except nothing blocks: fuel is charged per candidate examined
    /// and per pump event, and `OutOfFuel` suspends the scan with the
    /// position parked in the cursor's pinned mark).
    fn cursor_next_fuel(
        &mut self,
        c: &mut Cursor,
        fuel: &mut u32,
    ) -> Result<CursorStep, EngineError> {
        if c.done {
            return Ok(CursorStep::End);
        }
        // Fuel is checked *after* each unit of work (candidate examined
        // or event pumped), never before the first: see
        // [`Self::pump_finish_fuel`] for why refusing to work at zero
        // fuel would livelock a budget-1 step.
        loop {
            let candidate = match (c.step.axis, c.mark) {
                (Axis::Child, None) => self.buffer.first_child(c.base),
                (Axis::Child, Some(m)) => self.buffer.next_sibling(m),
                (Axis::Descendant, None) => self.buffer.next_in_subtree(c.base, c.base),
                (Axis::Descendant, Some(m)) => self.buffer.next_in_subtree(c.base, m),
            };
            match candidate {
                Some(n) => {
                    self.buffer.pin(n);
                    if let Some(m) = c.mark {
                        self.buffer.unpin(m);
                    }
                    c.mark = Some(n);
                    if self.node_matches(n, c.step.test) {
                        return Ok(CursorStep::Found(n));
                    }
                }
                None => {
                    if self.buffer.is_finished(c.base) {
                        self.cursor_abort(c);
                        return Ok(CursorStep::End);
                    }
                    if self.pump_step()? == PumpEvent::Eof && !self.buffer.is_finished(c.base) {
                        return Err(EngineError::MissingData(
                            "input ended inside an open element".into(),
                        ));
                    }
                }
            }
            *fuel = fuel.saturating_sub(1);
            if *fuel == 0 {
                return Ok(CursorStep::OutOfFuel);
            }
        }
    }

    /// Releases a cursor's pin early (used by exists-checks).
    fn cursor_abort(&mut self, c: &mut Cursor) {
        if let Some(m) = c.mark.take() {
            self.buffer.unpin(m);
        }
        c.done = true;
    }

    // ------------------------------------------------------------------
    // Frame execution (the step machine's inner dispatch)
    // ------------------------------------------------------------------

    /// Pushes `frame` back for retry when `e` is a need-input
    /// suspension, then propagates the error either way. Non-resumable
    /// errors end the run, so not re-pushing them is fine.
    fn suspend_err(&mut self, frame: Frame<'q>, e: EngineError) -> Result<(), EngineError> {
        if e.is_need_input() {
            self.frames.push(frame);
        }
        Err(e)
    }

    /// Executes one frame. Frames that suspend (out of fuel, input ran
    /// dry) push themselves back — with whatever state they mutated —
    /// before returning, so the next `drive` resumes mid-construct.
    fn exec_frame(&mut self, frame: Frame<'q>, fuel: &mut u32) -> Result<(), EngineError> {
        match frame {
            Frame::Preload => loop {
                match self.pump_step() {
                    Ok(PumpEvent::Eof) => return Ok(()),
                    Ok(_) => {}
                    Err(e) => return self.suspend_err(Frame::Preload, e),
                }
                *fuel = fuel.saturating_sub(1);
                if *fuel == 0 {
                    self.frames.push(Frame::Preload);
                    return Ok(());
                }
            },
            Frame::Begin => {
                let root_tag = self.compiled.rewritten.root_tag;
                self.writer.open(root_tag, self.projector.tags())?;
                self.trace("output root open");
                Ok(())
            }
            Frame::End => {
                let root_tag = self.compiled.rewritten.root_tag;
                self.writer.close(root_tag, self.projector.tags())?;
                self.writer.flush()?;
                Ok(())
            }
            Frame::Eval(e) => self.eval_frame(e),
            Frame::Seq { items, idx } => {
                if let Some(item) = items.get(idx) {
                    self.frames.push(Frame::Seq {
                        items,
                        idx: idx + 1,
                    });
                    self.frames.push(Frame::Eval(item));
                }
                Ok(())
            }
            Frame::CloseTag(t) => {
                self.writer.close(t, self.projector.tags())?;
                Ok(())
            }
            Frame::VarEmit { node } => {
                match self.pump_finish_fuel(node, fuel) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.frames.push(Frame::VarEmit { node });
                        return Ok(());
                    }
                    Err(e) => return self.suspend_err(Frame::VarEmit { node }, e),
                }
                let t_emit = self.emit_timer();
                self.buffer
                    .write_subtree(node, self.projector.tags(), &mut self.writer)?;
                self.record_emit(t_emit);
                self.trace("output binding subtree");
                Ok(())
            }
            Frame::PathOut { mut cur, mut emit } => loop {
                if let Some(n) = emit {
                    match self.pump_finish_fuel(n, fuel) {
                        Ok(true) => {}
                        Ok(false) => {
                            self.frames.push(Frame::PathOut { cur, emit });
                            return Ok(());
                        }
                        Err(e) => return self.suspend_err(Frame::PathOut { cur, emit }, e),
                    }
                    let t_emit = self.emit_timer();
                    self.buffer
                        .write_subtree(n, self.projector.tags(), &mut self.writer)?;
                    self.record_emit(t_emit);
                    emit = None;
                }
                match self.cursor_next_fuel(&mut cur, fuel) {
                    Ok(CursorStep::Found(n)) => emit = Some(n),
                    Ok(CursorStep::End) => return Ok(()),
                    Ok(CursorStep::OutOfFuel) => {
                        self.frames.push(Frame::PathOut { cur, emit });
                        return Ok(());
                    }
                    Err(e) => return self.suspend_err(Frame::PathOut { cur, emit }, e),
                }
            },
            Frame::ForLoop { var, body, mut cur } => {
                self.check_cancelled()?;
                match self.cursor_next_fuel(&mut cur, fuel) {
                    Ok(CursorStep::Found(n)) => {
                        if self.debug {
                            let name = self
                                .buffer
                                .tag(n)
                                .map(|t| self.projector.tags().name(t).to_string())
                                .unwrap_or_else(|| "#text".into());
                            log_debug!(
                                LOG_TARGET,
                                "bind var{} -> node {} <{}>   buffer: {}",
                                var.0,
                                n.0,
                                name,
                                self.buffer.render_debug(self.projector.tags())
                            );
                        }
                        self.bindings[var.index()] = Some(n);
                        self.frames.push(Frame::ForLoop { var, body, cur });
                        self.frames.push(Frame::Eval(body));
                        Ok(())
                    }
                    Ok(CursorStep::End) => {
                        self.bindings[var.index()] = None;
                        Ok(())
                    }
                    Ok(CursorStep::OutOfFuel) => {
                        self.frames.push(Frame::ForLoop { var, body, cur });
                        Ok(())
                    }
                    Err(e) => self.suspend_err(Frame::ForLoop { var, body, cur }, e),
                }
            }
            Frame::IfBranch {
                then_branch,
                else_branch,
            } => {
                let branch = if self.cond_reg {
                    then_branch
                } else {
                    else_branch
                };
                self.frames.push(Frame::Eval(branch));
                Ok(())
            }
            Frame::Cond(c) => self.cond_frame(c),
            Frame::CondAnd(b) => {
                if self.cond_reg {
                    self.frames.push(Frame::Cond(b));
                }
                Ok(())
            }
            Frame::CondOr(b) => {
                if !self.cond_reg {
                    self.frames.push(Frame::Cond(b));
                }
                Ok(())
            }
            Frame::CondNot => {
                self.cond_reg = !self.cond_reg;
                Ok(())
            }
            Frame::CondExists { mut cur } => match self.cursor_next_fuel(&mut cur, fuel) {
                Ok(CursorStep::Found(_)) => {
                    self.cursor_abort(&mut cur);
                    self.cond_reg = true;
                    Ok(())
                }
                Ok(CursorStep::End) => {
                    self.cond_reg = false;
                    Ok(())
                }
                Ok(CursorStep::OutOfFuel) => {
                    self.frames.push(Frame::CondExists { cur });
                    Ok(())
                }
                Err(e) => self.suspend_err(Frame::CondExists { cur }, e),
            },
            Frame::CondPump(c) => self.exec_cond_pump(c, fuel),
            Frame::SignOff { base, path, role } => {
                match self.pump_finish_fuel(base, fuel) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.frames.push(Frame::SignOff { base, path, role });
                        return Ok(());
                    }
                    Err(e) => return self.suspend_err(Frame::SignOff { base, path, role }, e),
                }
                self.signoff_commit(base, path, role)
            }
        }
    }

    /// Dispatches one expression onto the frame stack. Pure stack
    /// manipulation plus the leaf cases that cannot suspend (writer
    /// opens/closes); anything that pumps gets its own frame.
    fn eval_frame(&mut self, e: &'q Expr) -> Result<(), EngineError> {
        match e {
            Expr::Empty => Ok(()),
            Expr::OpenTag(t) => {
                self.writer.open(*t, self.projector.tags())?;
                Ok(())
            }
            Expr::CloseTag(t) => {
                self.writer.close(*t, self.projector.tags())?;
                Ok(())
            }
            Expr::Element { tag, content } => {
                self.writer.open(*tag, self.projector.tags())?;
                self.frames.push(Frame::CloseTag(*tag));
                self.frames.push(Frame::Eval(content));
                Ok(())
            }
            Expr::Sequence(items) => {
                self.frames.push(Frame::Seq { items, idx: 0 });
                Ok(())
            }
            Expr::VarRef(v) => {
                let node = self.binding(*v);
                self.frames.push(Frame::VarEmit { node });
                Ok(())
            }
            Expr::PathOutput { var, step } => {
                let base = self.binding(*var);
                self.frames.push(Frame::PathOut {
                    cur: Cursor::new(base, *step),
                    emit: None,
                });
                Ok(())
            }
            Expr::For {
                var,
                source,
                step,
                body,
            } => {
                let base = self.binding(*source);
                self.frames.push(Frame::ForLoop {
                    var: *var,
                    body,
                    cur: Cursor::new(base, *step),
                });
                Ok(())
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.frames.push(Frame::IfBranch {
                    then_branch,
                    else_branch,
                });
                self.frames.push(Frame::Cond(cond));
                Ok(())
            }
            Expr::SignOff { var, path, role } => {
                if !self.gc {
                    return Ok(());
                }
                let base = self.binding(*var);
                if path.is_empty() {
                    self.buffer.sign_off(base, *role, 1)?;
                    self.trace("signOff(ε)");
                    return Ok(());
                }
                self.frames.push(Frame::SignOff {
                    base,
                    path,
                    role: *role,
                });
                Ok(())
            }
        }
    }

    fn binding(&self, v: VarId) -> BufNodeId {
        self.bindings[v.index()]
            .unwrap_or_else(|| panic!("variable {} evaluated outside its scope", v.0))
    }

    // ------------------------------------------------------------------
    // Conditions
    // ------------------------------------------------------------------

    /// Dispatches one condition onto the frame stack; leaves (or
    /// arranges for) its verdict in `cond_reg`.
    fn cond_frame(&mut self, c: &'q Cond) -> Result<(), EngineError> {
        match c {
            Cond::True => {
                self.cond_reg = true;
                Ok(())
            }
            Cond::Exists { var, step } => {
                let base = self.binding(*var);
                self.frames.push(Frame::CondExists {
                    cur: Cursor::new(base, *step),
                });
                Ok(())
            }
            Cond::CmpStr { .. } | Cond::CmpVar { .. } => {
                self.frames.push(Frame::CondPump(c));
                Ok(())
            }
            Cond::And(a, b) => {
                self.frames.push(Frame::CondAnd(b));
                self.frames.push(Frame::Cond(a));
                Ok(())
            }
            Cond::Or(a, b) => {
                self.frames.push(Frame::CondOr(b));
                self.frames.push(Frame::Cond(a));
                Ok(())
            }
            Cond::Not(inner) => {
                self.frames.push(Frame::CondNot);
                self.frames.push(Frame::Cond(inner));
                Ok(())
            }
        }
    }

    /// Runs a comparison condition: pump the base subtree(s) finished
    /// (fueled — re-entry is idempotent because a finished base pumps
    /// zero events), then compute the verdict in one non-suspending
    /// commit.
    fn exec_cond_pump(&mut self, c: &'q Cond, fuel: &mut u32) -> Result<(), EngineError> {
        match c {
            Cond::CmpStr {
                var,
                step,
                op,
                value,
            } => {
                let base = self.binding(*var);
                match self.pump_finish_fuel(base, fuel) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.frames.push(Frame::CondPump(c));
                        return Ok(());
                    }
                    Err(e) => return self.suspend_err(Frame::CondPump(c), e),
                }
                self.cond_reg = self.cmp_str_commit(base, *step, *op, value);
                Ok(())
            }
            Cond::CmpVar {
                left_var,
                left_step,
                op,
                right_var,
                right_step,
            } => {
                let lbase = self.binding(*left_var);
                let rbase = self.binding(*right_var);
                for base in [lbase, rbase] {
                    match self.pump_finish_fuel(base, fuel) {
                        Ok(true) => {}
                        Ok(false) => {
                            self.frames.push(Frame::CondPump(c));
                            return Ok(());
                        }
                        Err(e) => return self.suspend_err(Frame::CondPump(c), e),
                    }
                }
                self.cond_reg = self.cmp_var_commit(lbase, *left_step, *op, rbase, *right_step);
                Ok(())
            }
            _ => unreachable!("CondPump only holds comparison conditions"),
        }
    }

    /// `$x/π op "literal"` over a *finished* base. Hot path (every
    /// binding of a conditioned for-loop runs this): match nodes and
    /// string values go through the engine's reusable scratch, not
    /// fresh allocations.
    fn cmp_str_commit(
        &mut self,
        base: BufNodeId,
        step: Step,
        op: gcx_query::RelOp,
        value: &str,
    ) -> bool {
        let mut matches = std::mem::take(&mut self.cmp_nodes);
        matches.clear();
        self.collect_matches_into(base, step, &mut matches);
        let mut text = std::mem::take(&mut self.cmp_text);
        let mut found = false;
        for &n in &matches {
            text.clear();
            self.buffer.string_value_into(n, &mut text);
            if compare_values(&text, value, op) {
                found = true;
                break;
            }
        }
        self.cmp_text = text;
        self.cmp_nodes = matches;
        found
    }

    /// `$x/π op $y/ρ` over two *finished* bases (existential
    /// comparison semantics).
    fn cmp_var_commit(
        &mut self,
        lbase: BufNodeId,
        left_step: Step,
        op: gcx_query::RelOp,
        rbase: BufNodeId,
        right_step: Step,
    ) -> bool {
        let mut lnodes = Vec::new();
        self.collect_matches_into(lbase, left_step, &mut lnodes);
        let left: Vec<String> = lnodes
            .iter()
            .map(|&n| self.buffer.string_value(n))
            .collect();
        if left.is_empty() {
            return false;
        }
        let mut right = Vec::new();
        self.collect_matches_into(rbase, right_step, &mut right);
        for &rn in &right {
            let rv = self.buffer.string_value(rn);
            if left.iter().any(|lv| compare_values(lv, &rv, op)) {
                return true;
            }
        }
        false
    }

    /// Collects all buffered matches of `step` under a *finished* base (no
    /// pumping; used by comparisons) into a caller-provided vector.
    fn collect_matches_into(&self, base: BufNodeId, step: Step, out: &mut Vec<BufNodeId>) {
        match step.axis {
            Axis::Child => {
                let mut c = self.buffer.first_child(base);
                while let Some(n) = c {
                    if self.node_matches(n, step.test) {
                        out.push(n);
                    }
                    c = self.buffer.next_sibling(n);
                }
            }
            Axis::Descendant => {
                let mut cur = base;
                while let Some(n) = self.buffer.next_in_subtree(base, cur) {
                    if self.node_matches(n, step.test) {
                        out.push(n);
                    }
                    cur = n;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // signOff execution (paper Fig. 10)
    // ------------------------------------------------------------------

    /// Executes a path signOff over a *finished* base subtree (path
    /// evaluation is only correct once the base is complete; the
    /// [`Frame::SignOff`] frame pumps it finished first, which
    /// coincides with when the paper's sequential semantics reaches
    /// the statement).
    fn signoff_commit(
        &mut self,
        base: BufNodeId,
        path: &RelPath,
        role: Role,
    ) -> Result<(), EngineError> {
        // Aggregate roles (paper §6) are carried by the subtree root only:
        // evaluate the path without its dos::node() terminal.
        let steps: &[PStep] = if self.compiled.is_aggregate(role) {
            match path.steps.last() {
                Some(last) if last.test == PTest::AnyNode => &path.steps[..path.steps.len() - 1],
                _ => &path.steps,
            }
        } else {
            &path.steps
        };
        // Path evaluation runs per signOff per binding: the frontier sets
        // live in engine scratch (taken/restored so the buffer stays
        // accessible), not in per-call vectors.
        let mut frontier = std::mem::take(&mut self.path_frontier);
        let mut next = std::mem::take(&mut self.path_next);
        self.eval_relpath_into(base, steps, &mut frontier, &mut next);
        if self.debug {
            log_debug!(
                LOG_TARGET,
                "signOff path base={} role=r{} targets={:?}",
                base.0,
                role.0,
                frontier.iter().map(|&(n, c)| (n.0, c)).collect::<Vec<_>>()
            );
        }
        for &(node, count) in &frontier {
            self.buffer.sign_off(node, role, count)?;
        }
        frontier.clear();
        next.clear();
        self.path_frontier = frontier;
        self.path_next = next;
        self.trace("signOff(path)");
        Ok(())
    }

    /// Evaluates a projection path over the buffer with *multiplicity*
    /// semantics: each target is returned (in `frontier`) with the number
    /// of distinct step-binding assignments reaching it, mirroring
    /// role-assignment multiplicities (paper Example 1; DESIGN.md
    /// "signOff path semantics"). `frontier`/`next` are caller-provided
    /// working sets; the result is left in `frontier`.
    fn eval_relpath_into(
        &self,
        base: BufNodeId,
        steps: &[PStep],
        frontier: &mut Vec<(BufNodeId, u32)>,
        next: &mut Vec<(BufNodeId, u32)>,
    ) {
        frontier.clear();
        frontier.push((base, 1));
        for step in steps {
            next.clear();
            for &(n, count) in frontier.iter() {
                match step.axis {
                    gcx_projection::PAxis::Child => {
                        let mut c = self.buffer.first_child(n);
                        while let Some(x) = c {
                            if ptest_matches(&self.buffer, x, step.test) {
                                next.push((x, count));
                                if step.pred == Pred::First {
                                    break;
                                }
                            }
                            c = self.buffer.next_sibling(x);
                        }
                    }
                    gcx_projection::PAxis::Descendant => {
                        let mut cur = n;
                        while let Some(x) = self.buffer.next_in_subtree(n, cur) {
                            if ptest_matches(&self.buffer, x, step.test) {
                                next.push((x, count));
                                if step.pred == Pred::First {
                                    break;
                                }
                            }
                            cur = x;
                        }
                    }
                    gcx_projection::PAxis::DescendantOrSelf => {
                        debug_assert_eq!(step.pred, Pred::True);
                        if ptest_matches(&self.buffer, n, step.test) {
                            next.push((n, count));
                        }
                        let mut cur = n;
                        while let Some(x) = self.buffer.next_in_subtree(n, cur) {
                            if ptest_matches(&self.buffer, x, step.test) {
                                next.push((x, count));
                            }
                            cur = x;
                        }
                    }
                }
            }
            // Merge duplicate targets, summing multiplicities.
            next.sort_unstable_by_key(|&(n, _)| n);
            next.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            std::mem::swap(frontier, next);
        }
    }
}

fn ptest_matches(buffer: &BufferTree, n: BufNodeId, test: PTest) -> bool {
    match test {
        PTest::Tag(t) => buffer.tag(n) == Some(t),
        PTest::Star => buffer.tag(n).is_some(),
        PTest::Text => buffer.is_text(n),
        PTest::AnyNode => true,
    }
}

// ----------------------------------------------------------------------
// Convenience entry points (the engines of Table 1)
// ----------------------------------------------------------------------

/// Runs the full GCX engine: incremental projection + active GC.
pub fn run_gcx<R: Read, W: Write>(
    compiled: &CompiledQuery,
    tags: &mut TagInterner,
    input: R,
    output: W,
) -> Result<RunReport, EngineError> {
    GcxEngine::new(compiled, tags, input, output, EngineOptions::default()).run()
}

/// Streaming projection without garbage collection ("static analysis
/// alone"; FluXQuery-class buffering behaviour for buffered data).
pub fn run_no_gc_streaming<R: Read, W: Write>(
    compiled: &CompiledQuery,
    tags: &mut TagInterner,
    input: R,
    output: W,
) -> Result<RunReport, EngineError> {
    let opts = EngineOptions {
        gc: false,
        ..Default::default()
    };
    GcxEngine::new(compiled, tags, input, output, opts).run()
}

/// Galax-style static projection \[13\]: materialize the projected document
/// entirely, then evaluate in memory.
pub fn run_static_projection<R: Read, W: Write>(
    compiled: &CompiledQuery,
    tags: &mut TagInterner,
    input: R,
    output: W,
) -> Result<RunReport, EngineError> {
    let opts = EngineOptions {
        gc: false,
        preload: true,
        ..Default::default()
    };
    GcxEngine::new(compiled, tags, input, output, opts).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::{compile, compile_default, CompileOptions};

    fn gcx_output(query: &str, doc: &str) -> (String, RunReport) {
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).expect("compile");
        let mut out = Vec::new();
        let report = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).expect("run");
        (String::from_utf8(out).unwrap(), report)
    }

    fn gcx_output_opts(query: &str, doc: &str, copts: CompileOptions) -> (String, RunReport) {
        let mut tags = TagInterner::new();
        let compiled = compile(query, &mut tags, copts).expect("compile");
        let mut out = Vec::new();
        let report = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).expect("run");
        (String::from_utf8(out).unwrap(), report)
    }

    #[test]
    fn simple_for_loop() {
        let (out, report) = gcx_output(
            "<r>{ for $b in /bib/book return $b/title }</r>",
            "<bib><book><title>A</title></book><book><title>B</title><price>5</price></book></bib>",
        );
        assert_eq!(out, "<r><title>A</title><title>B</title></r>");
        assert_eq!(report.safety, Some(true), "all roles returned");
    }

    #[test]
    fn intro_query_end_to_end() {
        let query = r#"<r>{ for $bib in /bib return
          ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
           for $b in $bib/book return $b/title) }</r>"#;
        let doc = "<bib><book><title>T1</title><author>A1</author></book>\
                   <book><title>T2</title><price>9</price></book>\
                   <cd><label>L</label></cd></bib>";
        let (out, report) = gcx_output(query, doc);
        // First loop: nodes without price → book1 and cd, full subtrees.
        // Second loop: all book titles.
        assert_eq!(
            out,
            "<r><book><title>T1</title><author>A1</author></book>\
             <cd><label>L</label></cd>\
             <title>T1</title><title>T2</title></r>"
        );
        assert_eq!(report.safety, Some(true));
    }

    #[test]
    fn intro_query_plain_options_same_output() {
        let query = r#"<r>{ for $bib in /bib return
          ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
           for $b in $bib/book return $b/title) }</r>"#;
        let doc = "<bib><book><title>T1</title><author>A1</author></book>\
                   <book><title>T2</title><price>9</price></book></bib>";
        let (out1, r1) = gcx_output(query, doc);
        let (out2, r2) = gcx_output_opts(query, doc, CompileOptions::plain());
        assert_eq!(out1, out2, "optimizations preserve semantics");
        assert_eq!(r1.safety, Some(true));
        assert_eq!(r2.safety, Some(true));
    }

    #[test]
    fn descendant_axis_query() {
        let (out, report) = gcx_output(
            "<r>{ for $t in /doc//title return $t }</r>",
            "<doc><sec><title>S1</title><sub><title>S2</title></sub></sec><title>Top</title></doc>",
        );
        assert_eq!(
            out,
            "<r><title>S1</title><title>S2</title><title>Top</title></r>"
        );
        assert_eq!(report.safety, Some(true));
    }

    #[test]
    fn join_query() {
        let query = r#"<r>{ for $p in /db/person return
            for $s in /db/sale return
            if ($s/buyer = $p/id) then <hit>{ ($p/name, $s/item) }</hit> else () }</r>"#;
        let doc = "<db><person><id>p1</id><name>Ann</name></person>\
                   <person><id>p2</id><name>Bob</name></person>\
                   <sale><buyer>p2</buyer><item>car</item></sale>\
                   <sale><buyer>p1</buyer><item>pen</item></sale></db>";
        let (out, report) = gcx_output(query, doc);
        assert_eq!(
            out,
            "<r><hit><name>Ann</name><item>pen</item></hit>\
             <hit><name>Bob</name><item>car</item></hit></r>"
        );
        assert_eq!(report.safety, Some(true));
    }

    #[test]
    fn comparisons_numeric() {
        let query = r#"<r>{ for $i in /inv/item return
            if ($i/price >= 10) then $i/name else () }</r>"#;
        let doc = "<inv><item><name>a</name><price>9.5</price></item>\
                   <item><name>b</name><price>10</price></item>\
                   <item><name>c</name><price>200</price></item></inv>";
        let (out, _) = gcx_output(query, doc);
        assert_eq!(out, "<r><name>b</name><name>c</name></r>");
    }

    #[test]
    fn text_output() {
        let (out, _) = gcx_output(
            "<r>{ for $n in /a/name return $n/text() }</r>",
            "<a><name>Jo</name><name>Mo</name></a>",
        );
        assert_eq!(out, "<r>JoMo</r>");
    }

    #[test]
    fn empty_result() {
        let (out, report) = gcx_output("<r>{ for $x in /a/zzz return $x }</r>", "<a><b/><c/></a>");
        assert_eq!(out, "<r></r>");
        assert_eq!(report.safety, Some(true));
    }

    #[test]
    fn memory_stays_constant_for_streamable_query() {
        // 200 books; GCX should hold only O(1) of them at a time.
        let mut doc = String::from("<bib>");
        for i in 0..200 {
            doc.push_str(&format!("<book><title>T{i}</title></book>"));
        }
        doc.push_str("</bib>");
        let (_, report) = gcx_output("<r>{ for $b in /bib/book return $b/title }</r>", &doc);
        assert!(
            report.stats.peak_nodes <= 8,
            "peak nodes {} should be constant-ish",
            report.stats.peak_nodes
        );
        assert_eq!(report.safety, Some(true));
    }

    #[test]
    fn no_gc_buffers_everything_projected() {
        let mut doc = String::from("<bib>");
        for i in 0..50 {
            doc.push_str(&format!("<book><title>T{i}</title></book>"));
        }
        doc.push_str("</bib>");
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let mut out1 = Vec::new();
        let gcx = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out1).unwrap();
        let mut tags2 = TagInterner::new();
        let compiled2 = compile_default(query, &mut tags2).unwrap();
        let mut out2 = Vec::new();
        let nogc = run_no_gc_streaming(&compiled2, &mut tags2, doc.as_bytes(), &mut out2).unwrap();
        assert_eq!(out1, out2, "same output");
        assert!(
            gcx.stats.peak_nodes * 4 < nogc.stats.peak_nodes,
            "GCX {} ≪ no-GC {}",
            gcx.stats.peak_nodes,
            nogc.stats.peak_nodes
        );
        assert_eq!(nogc.safety, None);
    }

    #[test]
    fn static_projection_equals_no_gc_peak() {
        let doc = "<bib><book><title>A</title></book><book><title>B</title></book></bib>";
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let mut out = Vec::new();
        let st = run_static_projection(&compiled, &mut tags, doc.as_bytes(), &mut out).unwrap();
        let mut tags2 = TagInterner::new();
        let compiled2 = compile_default(query, &mut tags2).unwrap();
        let mut out2 = Vec::new();
        let ng = run_no_gc_streaming(&compiled2, &mut tags2, doc.as_bytes(), &mut out2).unwrap();
        assert_eq!(out, out2);
        assert_eq!(st.stats.peak_nodes, ng.stats.peak_nodes);
        assert_eq!(st.engine, "static-projection");
    }

    #[test]
    fn nested_constructors_and_sequences() {
        let query = r#"<out>{ for $b in /bib/book return
            <entry><t>{ $b/title }</t><when>now</when></entry> }</out>"#;
        // "now" is not valid content — constructors contain queries; use a
        // bachelor tag instead.
        let query = query.replace("<when>now</when>", "<when/>");
        let (out, _) = gcx_output(&query, "<bib><book><title>X</title></book></bib>");
        assert_eq!(
            out,
            "<out><entry><t><title>X</title></t><when></when></entry></out>"
        );
    }

    #[test]
    fn exists_positive_and_negative() {
        let query = r#"<r>{ for $b in /bib/book return
            if (exists($b/price)) then <priced/> else <free/> }</r>"#;
        let doc = "<bib><book><price>1</price></book><book><title>t</title></book></bib>";
        let (out, report) = gcx_output(query, doc);
        assert_eq!(out, "<r><priced></priced><free></free></r>");
        assert_eq!(report.safety, Some(true));
    }

    #[test]
    fn boolean_connectives() {
        let query = r#"<r>{ for $b in /bib/book return
            if (exists($b/a) and not(exists($b/b)) or $b/k = "yes") then $b else () }</r>"#;
        let doc = "<bib>\
            <book><a/><id>1</id></book>\
            <book><a/><b/><id>2</id></book>\
            <book><b/><k>yes</k><id>3</id></book></bib>";
        let (out, _) = gcx_output(query, doc);
        assert!(out.contains("<id>1</id>"));
        assert!(!out.contains("<id>2</id>"));
        assert!(out.contains("<id>3</id>"));
    }

    #[test]
    fn cancel_flag_aborts_run() {
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let flag = CancelFlag::new();
        flag.cancel();
        assert!(flag.is_cancelled());
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            Vec::new(),
            EngineOptions::default(),
        );
        engine.set_cancel_flag(flag);
        assert!(matches!(engine.run(), Err(EngineError::Cancelled)));
    }

    #[test]
    fn uncancelled_flag_is_harmless() {
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            Vec::new(),
            EngineOptions::default(),
        );
        engine.set_cancel_flag(CancelFlag::new());
        assert!(engine.run().is_ok());
    }

    #[test]
    fn stage_metrics_populate_when_sampling_every_step() {
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book><junk><x/><y/></junk>\
                   <book><title>B</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let metrics = Arc::new(crate::metrics::EngineStageMetrics::new());
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            Vec::new(),
            EngineOptions::default(),
        );
        engine.set_stage_metrics(metrics.clone(), 1);
        engine.run().unwrap();
        assert!(metrics.lex.count() > 0, "every pump step timed the lexer");
        assert!(metrics.matching.count() > 0, "matcher verdicts timed");
        assert!(metrics.buffer.count() > 0, "buffered nodes timed");
        assert!(metrics.skip.count() > 0, "the dead <junk> subtree timed");
        // Emits sample 1-in-16; this run has too few, so only check the
        // histogram is readable.
        let _ = metrics.emit.snapshot();
    }

    #[test]
    fn flight_recorder_captures_stage_spans_and_buffer_events() {
        use gcx_obs::{FlightRecorder, SpanKind};
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book><junk><x/><y/></junk>\
                   <book><title>B</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let rec = Arc::new(FlightRecorder::new());
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            Vec::new(),
            EngineOptions::default(),
        );
        engine.set_stage_metrics(Arc::new(crate::metrics::EngineStageMetrics::new()), 1);
        engine.set_flight_recorder(rec.clone(), 42);
        engine.run().unwrap();
        let totals = rec.stage_totals(42);
        let get = |k: SpanKind| totals.iter().find(|(x, _)| *x == k).unwrap().1;
        assert!(get(SpanKind::Lex) > 0, "lex spans recorded");
        assert!(get(SpanKind::Match) > 0, "match spans recorded");
        assert!(get(SpanKind::Buffer) > 0, "buffer spans recorded");
        assert!(get(SpanKind::Skip) > 0, "the dead <junk> subtree spanned");
        // Buffer events: at least one node-buffered instant with a
        // nonzero stream offset (only the first <bib> open sits at 0).
        rec.keep(42, "test", 0, false);
        let json = rec.export_chrome_json();
        assert!(json.contains("\"name\":\"node-buffered\""), "{json}");
        assert!(json.contains("\"name\":\"sign-off\""), "{json}");
        assert!(json.contains("\"name\":\"subtree-delete\""), "{json}");
    }

    #[test]
    fn stage_metrics_do_not_change_results() {
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book><book><title>B</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let mut plain_out = Vec::new();
        let plain = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut plain_out).unwrap();
        let mut tags2 = TagInterner::new();
        let compiled2 = compile_default(query, &mut tags2).unwrap();
        let mut timed_out = Vec::new();
        let mut engine = GcxEngine::new(
            &compiled2,
            &mut tags2,
            doc.as_bytes(),
            &mut timed_out,
            EngineOptions::default(),
        );
        engine.set_stage_metrics(Arc::new(crate::metrics::EngineStageMetrics::new()), 1);
        let timed = engine.run().unwrap();
        assert_eq!(plain_out, timed_out, "byte-identical output");
        assert_eq!(plain.stats.peak_nodes, timed.stats.peak_nodes);
        assert_eq!(plain.tokens_read, timed.tokens_read);
    }

    #[test]
    fn tracer_sees_buffer_states() {
        use std::sync::Mutex;
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let events: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            Vec::new(),
            EngineOptions::default(),
        );
        engine.set_tracer(Box::new(move |ev| {
            sink.lock()
                .unwrap()
                .push(format!("{}: {}", ev.label, ev.buffer));
        }));
        engine.run().unwrap();
        let log = events.lock().unwrap();
        assert!(!log.is_empty());
        assert!(log.iter().any(|l| l.contains("title")));
    }

    // ------------------------------------------------------------------
    // Step machine
    // ------------------------------------------------------------------

    /// The smallest possible budget forces a yield after every frame:
    /// output, statistics and safety must be identical to the blocking
    /// run, with many yields in between.
    #[test]
    fn step_budget_one_is_byte_identical() {
        let query = r#"<r>{ for $bib in /bib return
          ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
           for $b in $bib/book return $b/title) }</r>"#;
        let doc = "<bib><book><title>T1</title><author>A1</author></book>\
                   <book><title>T2</title><price>9</price></book>\
                   <cd><label>L</label></cd></bib>";
        let (reference, ref_report) = gcx_output(query, doc);
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let mut out = Vec::new();
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            &mut out,
            EngineOptions::default(),
        );
        let mut yields = 0u64;
        let report = loop {
            match engine.step(1) {
                StepOutcome::Yielded => yields += 1,
                StepOutcome::Finished(r) => break r,
                other => panic!("unexpected step outcome: {other:?}"),
            }
        };
        drop(engine);
        assert_eq!(String::from_utf8(out).unwrap(), reference);
        assert!(yields > 10, "budget 1 must yield many times, got {yields}");
        assert_eq!(report.safety, Some(true));
        assert_eq!(report.output_bytes, ref_report.output_bytes);
        assert_eq!(report.tokens_read, ref_report.tokens_read);
    }

    /// A reader that returns `WouldBlock` before every (tiny) chunk.
    struct BlockyReader<'a> {
        data: &'a [u8],
        pos: usize,
        turn: bool,
    }

    impl std::io::Read for BlockyReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.turn = !self.turn;
            if self.turn {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(3).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// `NeedInput` suspends evaluation wherever it was (mid-construct,
    /// mid-skip, mid-pump) and a retried step resumes it losslessly.
    #[test]
    fn need_input_steps_resume_losslessly() {
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book><junk><x/><deep><y/></deep></junk>\
                   <book><title>B</title></book></bib>";
        let (reference, _) = gcx_output(query, doc);
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let input = BlockyReader {
            data: doc.as_bytes(),
            pos: 0,
            turn: false,
        };
        let mut out = Vec::new();
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            input,
            &mut out,
            EngineOptions::default(),
        );
        let mut need_input = 0u64;
        let report = loop {
            match engine.step(4) {
                StepOutcome::Yielded => {}
                StepOutcome::NeedInput => need_input += 1,
                StepOutcome::Finished(r) => break r,
                other => panic!("unexpected step outcome: {other:?}"),
            }
        };
        drop(engine);
        assert_eq!(String::from_utf8(out).unwrap(), reference);
        assert!(need_input > 0, "the blocky reader must surface NeedInput");
        assert_eq!(report.safety, Some(true));
    }

    /// A closed output gate parks the engine without running anything;
    /// opening it lets the run complete normally.
    #[test]
    fn output_gate_pauses_stepping() {
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let mut out = Vec::new();
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            &mut out,
            EngineOptions::default(),
        );
        let open = Arc::new(AtomicBool::new(false));
        let probe = open.clone();
        engine.set_output_gate(Box::new(move || probe.load(Ordering::Relaxed)));
        for _ in 0..3 {
            assert!(matches!(
                engine.step(1_000),
                StepOutcome::OutputBackpressure
            ));
        }
        open.store(true, Ordering::Relaxed);
        let report = loop {
            match engine.step(1_000) {
                StepOutcome::Yielded => {}
                StepOutcome::Finished(r) => break r,
                other => panic!("unexpected step outcome: {other:?}"),
            }
        };
        drop(engine);
        assert_eq!(String::from_utf8(out).unwrap(), "<r><title>A</title></r>");
        assert_eq!(report.safety, Some(true));
    }

    /// The step machine records yield spans in the flight recorder.
    #[test]
    fn yield_spans_recorded() {
        use gcx_obs::FlightRecorder;
        let query = "<r>{ for $b in /bib/book return $b/title }</r>";
        let doc = "<bib><book><title>A</title></book><book><title>B</title></book></bib>";
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).unwrap();
        let rec = Arc::new(FlightRecorder::new());
        let mut engine = GcxEngine::new(
            &compiled,
            &mut tags,
            doc.as_bytes(),
            Vec::new(),
            EngineOptions::default(),
        );
        engine.set_flight_recorder(rec.clone(), 77);
        loop {
            match engine.step(2) {
                StepOutcome::Yielded => {}
                StepOutcome::Finished(_) => break,
                other => panic!("unexpected step outcome: {other:?}"),
            }
        }
        rec.keep(77, "steps", 0, false);
        let json = rec.export_chrome_json();
        assert!(json.contains("\"name\":\"yield\""), "{json}");
    }
}
