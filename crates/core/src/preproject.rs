//! The stream preprojector (paper Fig. 11, right-hand component).
//!
//! "Once it has been activated by the buffer manager, the stream projector
//! processes the input stream until a token relevant to query evaluation
//! is detected. This token is then copied directly into the buffer,
//! together with its associated roles."
//!
//! [`Preprojector::pump`] processes one input token: it matches it against
//! the projection tree (via [`StreamMatcher`]), copies it into the buffer
//! with its roles when preserved, and maintains the open-element stack so
//! that promoted descendants attach to the nearest *buffered* ancestor
//! (document projection, paper Def. 1). Dead subtrees — where the matcher
//! proves nothing below can match — are handed wholesale to the lexer's
//! raw skip scanner ([`XmlLexer::skip_subtree`]): the bytes are consumed
//! without copying text, decoding entities, interning attribute names or
//! materializing events, and are reported by
//! [`Preprojector::bytes_skipped`]. The per-event skip loop is kept
//! behind [`Preprojector::set_skip_lexing`] so differential tests (and
//! ablations) can prove the two paths equivalent.

use crate::error::EngineError;
use crate::metrics::EngineStageMetrics;
use gcx_buffer::{BufNodeId, BufferTree};
use gcx_obs::{FlightRecorder, LatencyHistogram, SpanKind};
use gcx_projection::{ProjTree, StreamMatcher};
use gcx_xml::{XmlEvent, XmlLexer};
use std::io::Read;
use std::sync::Arc;
use std::time::Instant;

/// What one pump step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpEvent {
    /// A node was copied into the buffer.
    Buffered(BufNodeId),
    /// A buffered element's closing tag was processed (the node may have
    /// been purged by the close-time sweep).
    Closed(BufNodeId),
    /// A token (or a whole dead subtree) was discarded.
    Skipped,
    /// The input is exhausted; the buffer root is now finished.
    Eof,
}

struct OpenEntry {
    /// The buffer node of this element, if it was preserved.
    buf: Option<BufNodeId>,
    /// The nearest buffered ancestor-or-self (attachment point for
    /// children).
    attach: BufNodeId,
}

/// A dead-subtree skip that blocked mid-way on a non-blocking input.
///
/// The matcher consumed the subtree's `Open` *before* the skip started,
/// so a blocked skip must be **resumed** on the next pump — re-lexing a
/// fresh token would run it against a matcher that is already one level
/// deep into the dead subtree.
enum SkipResume {
    /// The lexer's raw skip blocked; the lexer's own resume state holds
    /// the position and depth.
    Raw,
    /// The per-event fallback blocked at this element depth.
    Events(usize),
}

/// Streaming projector over a lexer. See module docs.
pub struct Preprojector<'t, 'q, R: Read> {
    lexer: XmlLexer<'t, R>,
    matcher: StreamMatcher<'q>,
    stack: Vec<OpenEntry>,
    eof: bool,
    /// Tokens read from the input (statistics). Tokens inside raw-skipped
    /// dead subtrees are never materialized and are *not* counted here;
    /// see [`Self::bytes_skipped`] for their byte volume.
    pub tokens_read: u64,
    /// Tokens skipped without buffering (statistics).
    pub tokens_skipped: u64,
    /// Use skip-mode lexing for dead subtrees (default). Off = pump the
    /// lexer per event, matching the historical behaviour exactly.
    skip_lexing: bool,
    /// Sampled per-stage timing sink (see [`crate::metrics`]). `None`
    /// keeps the hot path free of any timing work.
    stage_metrics: Option<Arc<EngineStageMetrics>>,
    /// Request-scoped flight recorder + trace ID: sampled pump steps also
    /// record per-stage spans stamped with the input byte offset, and the
    /// buffer is fed the lexer offset so its events carry it too.
    flight: Option<(Arc<FlightRecorder>, u64)>,
    /// Pump steps between timed samples, and the running tick.
    sample_every: u32,
    sample_tick: u32,
    /// A dead-subtree skip that blocked on `WouldBlock`; resumed by the
    /// next [`Self::pump`] before anything new is lexed.
    pending_skip: Option<SkipResume>,
}

/// Records `t0.elapsed()` into the stage picked by `pick` when this pump
/// step is a timed sample, and — when a flight recorder is installed —
/// as a trace span of `kind` stamped with the input byte `offset`. Free
/// function over the fields (not a `&self` method) so it composes with
/// the matcher's outcome borrows.
#[inline]
fn record_stage(
    metrics: &Option<Arc<EngineStageMetrics>>,
    flight: &Option<(Arc<FlightRecorder>, u64)>,
    pick: fn(&EngineStageMetrics) -> &LatencyHistogram,
    kind: SpanKind,
    t0: Option<Instant>,
    offset: u64,
) {
    let Some(t0) = t0 else { return };
    let dur = t0.elapsed();
    if let Some(m) = metrics {
        pick(m).record(dur);
    }
    if let Some((rec, tid)) = flight {
        let dur_ns = dur.as_nanos() as u64;
        let start = rec.now_ns().saturating_sub(dur_ns);
        rec.record_span(*tid, kind, start, dur_ns, offset);
    }
}

impl<'t, 'q, R: Read> Preprojector<'t, 'q, R> {
    /// Creates a projector and assigns the root roles (a query that
    /// outputs `$root` projects the whole document).
    pub fn new(lexer: XmlLexer<'t, R>, tree: &'q ProjTree, buffer: &mut BufferTree) -> Self {
        let matcher = StreamMatcher::new(tree);
        for &r in matcher.root_roles() {
            buffer.add_role(BufferTree::ROOT, r);
        }
        let mut stack = Vec::with_capacity(64); // typical XML depth ≪ 64
        stack.push(OpenEntry {
            buf: Some(BufferTree::ROOT),
            attach: BufferTree::ROOT,
        });
        Preprojector {
            lexer,
            matcher,
            stack,
            eof: false,
            tokens_read: 0,
            tokens_skipped: 0,
            skip_lexing: true,
            stage_metrics: None,
            flight: None,
            sample_every: crate::metrics::DEFAULT_STAGE_SAMPLE_EVERY,
            sample_tick: 0,
            pending_skip: None,
        }
    }

    /// Installs sampled per-stage timing: every `sample_every`th pump
    /// step is timed stage by stage into `metrics` (shared, wait-free).
    /// Untimed steps pay one counter increment.
    pub fn set_stage_metrics(&mut self, metrics: Arc<EngineStageMetrics>, sample_every: u32) {
        self.stage_metrics = Some(metrics);
        self.sample_every = sample_every.max(1);
        self.sample_tick = 0;
    }

    /// Installs a request-scoped flight recorder: sampled pump steps
    /// record lex/skip/match/buffer spans under `trace_id`, stamped with
    /// the input byte offset. Shares the [`Self::set_stage_metrics`]
    /// sampling cadence.
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>, trace_id: u64) {
        self.flight = Some((recorder, trace_id));
    }

    /// Bytes consumed by the lexer's raw dead-subtree scanner (the
    /// lexer owns the counter; this is its only skip-driving caller).
    pub fn bytes_skipped(&self) -> u64 {
        self.lexer.bytes_skipped()
    }

    /// Toggles skip-mode lexing for dead subtrees (on by default). The
    /// per-event fallback exists for differential tests and ablation
    /// runs; both paths produce identical buffers and output.
    pub fn set_skip_lexing(&mut self, on: bool) {
        self.skip_lexing = on;
    }

    /// Access to the tag interner (for output rendering).
    pub fn tags(&self) -> &gcx_xml::TagInterner {
        self.lexer.tags()
    }

    /// True once the whole input has been consumed.
    pub fn at_eof(&self) -> bool {
        self.eof
    }

    /// Number of DFA states constructed by the matcher (0 in NFA mode).
    pub fn dfa_states(&self) -> usize {
        self.matcher.dfa_states()
    }

    /// Processes one token (or one dead subtree). Returns what happened.
    ///
    /// Uses the lexer's borrowed-event API: buffered text is copied
    /// exactly once, from the lexer's scratch straight into the buffer's
    /// text arena, with no intermediate `String`.
    ///
    /// **Non-blocking inputs:** a `WouldBlock` error (see
    /// [`EngineError::is_need_input`]) leaves the projector retryable —
    /// call `pump` again once more input arrives and the event stream
    /// continues exactly where it left off. A blocked dead-subtree skip
    /// is resumed internally (the matcher had already consumed the
    /// subtree's opening tag).
    pub fn pump(&mut self, buffer: &mut BufferTree) -> Result<PumpEvent, EngineError> {
        if self.eof {
            return Ok(PumpEvent::Eof);
        }
        // Sampled stage timing: every `sample_every`th pump step is
        // timed stage by stage; the rest pay one counter increment (and
        // nothing at all when no metrics sink is installed).
        let sampled = (self.stage_metrics.is_some() || self.flight.is_some()) && {
            self.sample_tick += 1;
            if self.sample_tick >= self.sample_every {
                self.sample_tick = 0;
                true
            } else {
                false
            }
        };
        // A dead-subtree skip blocked mid-way last pump: finish it before
        // lexing anything new, then do the matcher close + accounting
        // that the original skip never reached (exactly once).
        if let Some(resume) = self.pending_skip.take() {
            let tok_offset = self.lexer.offset();
            let t_skip = sampled.then(Instant::now);
            match resume {
                SkipResume::Raw => {
                    if let Err(e) = self.lexer.skip_subtree() {
                        if e.is_would_block() {
                            self.pending_skip = Some(SkipResume::Raw);
                        }
                        return Err(e.into());
                    }
                }
                SkipResume::Events(depth) => self.skip_subtree_events(depth)?,
            }
            record_stage(
                &self.stage_metrics,
                &self.flight,
                |m| &m.skip,
                SpanKind::Skip,
                t_skip,
                tok_offset,
            );
            self.matcher.close();
            self.tokens_skipped += 1;
            return Ok(PumpEvent::Skipped);
        }
        // Token-start offset, captured before lexing: borrowed events
        // (`Text`) keep the lexer borrowed, so it cannot be read later.
        let tok_offset = self.lexer.offset();
        let t_lex = sampled.then(Instant::now);
        let event = self.lexer.next_event()?;
        if self.flight.is_some() {
            // Stamp subsequent buffer events with where the stream is.
            buffer.set_stream_offset(tok_offset);
        }
        record_stage(
            &self.stage_metrics,
            &self.flight,
            |m| &m.lex,
            SpanKind::Lex,
            t_lex,
            tok_offset,
        );
        match event {
            None => {
                self.eof = true;
                buffer.finish(BufferTree::ROOT);
                Ok(PumpEvent::Eof)
            }
            Some(XmlEvent::Open(tag)) => {
                self.tokens_read += 1;
                let t_match = sampled.then(Instant::now);
                let outcome = self.matcher.open(tag);
                record_stage(
                    &self.stage_metrics,
                    &self.flight,
                    |m| &m.matching,
                    SpanKind::Match,
                    t_match,
                    tok_offset,
                );
                let top_attach = self.stack.last().expect("stack nonempty").attach;
                if outcome.buffer {
                    let t_buf = sampled.then(Instant::now);
                    let node = buffer.open_element(top_attach, tag)?;
                    for &r in outcome.roles {
                        buffer.add_role(node, r);
                    }
                    record_stage(
                        &self.stage_metrics,
                        &self.flight,
                        |m| &m.buffer,
                        SpanKind::Buffer,
                        t_buf,
                        tok_offset,
                    );
                    self.stack.push(OpenEntry {
                        buf: Some(node),
                        attach: node,
                    });
                    Ok(PumpEvent::Buffered(node))
                } else if self.matcher.is_dead() {
                    // Nothing inside this subtree can match: skip to the
                    // matching close without per-token matching — as a
                    // raw byte scan when skip-mode lexing is on.
                    if self.skip_lexing {
                        let t_skip = sampled.then(Instant::now);
                        if let Err(e) = self.lexer.skip_subtree() {
                            if e.is_would_block() {
                                self.pending_skip = Some(SkipResume::Raw);
                            }
                            return Err(e.into());
                        }
                        record_stage(
                            &self.stage_metrics,
                            &self.flight,
                            |m| &m.skip,
                            SpanKind::Skip,
                            t_skip,
                            tok_offset,
                        );
                    } else {
                        self.skip_subtree_events(0)?;
                    }
                    self.matcher.close();
                    self.tokens_skipped += 1;
                    Ok(PumpEvent::Skipped)
                } else {
                    self.stack.push(OpenEntry {
                        buf: None,
                        attach: top_attach,
                    });
                    self.tokens_skipped += 1;
                    Ok(PumpEvent::Skipped)
                }
            }
            Some(XmlEvent::Close(_)) => {
                self.tokens_read += 1;
                let t_match = sampled.then(Instant::now);
                self.matcher.close();
                record_stage(
                    &self.stage_metrics,
                    &self.flight,
                    |m| &m.matching,
                    SpanKind::Match,
                    t_match,
                    tok_offset,
                );
                let entry = self.stack.pop().expect("balanced stream");
                match entry.buf {
                    Some(node) => {
                        let t_buf = sampled.then(Instant::now);
                        buffer.finish(node);
                        record_stage(
                            &self.stage_metrics,
                            &self.flight,
                            |m| &m.buffer,
                            SpanKind::Buffer,
                            t_buf,
                            tok_offset,
                        );
                        Ok(PumpEvent::Closed(node))
                    }
                    None => {
                        self.tokens_skipped += 1;
                        Ok(PumpEvent::Skipped)
                    }
                }
            }
            Some(XmlEvent::Text(text)) => {
                self.tokens_read += 1;
                let t_match = sampled.then(Instant::now);
                let outcome = self.matcher.text();
                record_stage(
                    &self.stage_metrics,
                    &self.flight,
                    |m| &m.matching,
                    SpanKind::Match,
                    t_match,
                    tok_offset,
                );
                if outcome.buffer {
                    let parent = self.stack.last().expect("stack nonempty").attach;
                    let t_buf = sampled.then(Instant::now);
                    let node = buffer.add_text(parent, text)?;
                    for &r in outcome.roles {
                        buffer.add_role(node, r);
                    }
                    record_stage(
                        &self.stage_metrics,
                        &self.flight,
                        |m| &m.buffer,
                        SpanKind::Buffer,
                        t_buf,
                        tok_offset,
                    );
                    Ok(PumpEvent::Buffered(node))
                } else {
                    self.tokens_skipped += 1;
                    Ok(PumpEvent::Skipped)
                }
            }
        }
    }

    /// Consumes tokens until the current element's closing tag, without
    /// matching (the matcher has proven the subtree dead). Per-event
    /// fallback for [`XmlLexer::skip_subtree`]; see
    /// [`Self::set_skip_lexing`]. On `WouldBlock` the reached depth is
    /// parked in [`Self::pending_skip`] so the next pump resumes here.
    fn skip_subtree_events(&mut self, mut depth: usize) -> Result<(), EngineError> {
        loop {
            let event = match self.lexer.next_event() {
                Ok(ev) => ev,
                Err(e) => {
                    if e.is_would_block() {
                        self.pending_skip = Some(SkipResume::Events(depth));
                    }
                    return Err(e.into());
                }
            };
            let Some(event) = event else {
                // Unbalanced input is caught by the lexer itself.
                return Ok(());
            };
            self.tokens_read += 1;
            self.tokens_skipped += 1;
            match event {
                XmlEvent::Open(_) => depth += 1,
                XmlEvent::Close(_) => {
                    if depth == 0 {
                        return Ok(());
                    }
                    depth -= 1;
                }
                XmlEvent::Text(_) => {}
            }
        }
    }

    /// Pumps until end of input (used by the static-projection baseline).
    pub fn pump_to_eof(&mut self, buffer: &mut BufferTree) -> Result<(), EngineError> {
        while self.pump(buffer)? != PumpEvent::Eof {}
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::{PStep, PTest, Role};
    use gcx_xml::TagInterner;

    /// Projection for /bib/book/dos::node() over a small document.
    #[test]
    fn projects_matching_subtrees() {
        let mut tags = TagInterner::new();
        let bib = tags.intern("bib");
        let book = tags.intern("book");
        let mut tree = ProjTree::new();
        let v1 = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(bib)), Some(Role(0)));
        let v2 = tree.add_child(v1, PStep::child(PTest::Tag(book)), Some(Role(1)));
        tree.add_child(v2, PStep::dos_node(), Some(Role(2)));
        let doc = "<bib><book><title>t</title></book><junk><deep/></junk></bib>";
        let mut buffer = BufferTree::new(3, &[]);
        let lexer = XmlLexer::new(doc.as_bytes(), &mut tags);
        let mut proj = Preprojector::new(lexer, &tree, &mut buffer);
        proj.pump_to_eof(&mut buffer).unwrap();
        // Root + bib + book + title + text = 5 live nodes; junk skipped.
        assert_eq!(buffer.stats().live_nodes, 5);
        assert!(proj.tokens_skipped > 0);
        let rendered = buffer.render(proj.tags());
        assert!(rendered.contains("bib{r0}"), "got {rendered}");
        assert!(rendered.contains("book{r1,r2}"), "got {rendered}");
        assert!(!rendered.contains("junk"));
    }

    /// Promotion: descendants matched through skipped intermediates attach
    /// to the nearest buffered ancestor.
    #[test]
    fn promotion_to_buffered_ancestor() {
        let mut tags = TagInterner::new();
        let b = tags.intern("b");
        let mut tree = ProjTree::new();
        tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(b)),
            Some(Role(0)),
        );
        let doc = "<a><x><y><b/></y></x><b/></a>";
        let mut buffer = BufferTree::new(1, &[]);
        let lexer = XmlLexer::new(doc.as_bytes(), &mut tags);
        let mut proj = Preprojector::new(lexer, &tree, &mut buffer);
        proj.pump_to_eof(&mut buffer).unwrap();
        // Both b's become children of the buffer root (a, x, y discarded).
        assert_eq!(buffer.child_count(BufferTree::ROOT), 2);
        assert_eq!(buffer.stats().live_nodes, 3);
    }

    /// Dead-subtree skipping keeps the element count honest.
    #[test]
    fn dead_subtrees_are_skipped_wholesale() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let k = tags.intern("k");
        let mut tree = ProjTree::new();
        let va = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), Some(Role(0)));
        tree.add_child(va, PStep::child(PTest::Tag(k)), Some(Role(1)));
        // The <z> subtree is dead (only /a/k matters).
        let doc = "<a><z><k/><k/><k/></z><k/></a>";
        let mut buffer = BufferTree::new(2, &[]);
        let lexer = XmlLexer::new(doc.as_bytes(), &mut tags);
        let mut proj = Preprojector::new(lexer, &tree, &mut buffer);
        proj.pump_to_eof(&mut buffer).unwrap();
        // Only /a/k buffered — the k's inside z are not children of a.
        assert_eq!(buffer.stats().live_nodes, 3, "root, a, one k");
    }

    /// Eof finishes the root.
    #[test]
    fn eof_finishes_root() {
        let mut tags = TagInterner::new();
        let tree = ProjTree::new();
        let mut buffer = BufferTree::new(0, &[]);
        let lexer = XmlLexer::new("<a/>".as_bytes(), &mut tags);
        let mut proj = Preprojector::new(lexer, &tree, &mut buffer);
        assert!(!buffer.is_finished(BufferTree::ROOT));
        proj.pump_to_eof(&mut buffer).unwrap();
        assert!(buffer.is_finished(BufferTree::ROOT));
        assert!(proj.at_eof());
        // Further pumps keep returning Eof.
        assert_eq!(proj.pump(&mut buffer).unwrap(), PumpEvent::Eof);
    }

    /// Structural (condition-2) nodes are buffered without roles and carry
    /// role-bearing descendants.
    #[test]
    fn structural_nodes_buffered() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut tree = ProjTree::new();
        let va = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), Some(Role(0)));
        tree.add_child(va, PStep::child(PTest::Tag(b)), Some(Role(1)));
        tree.add_child(va, PStep::descendant(PTest::Tag(b)), Some(Role(2)));
        let doc = "<a><mid><b/></mid></a>";
        let mut buffer = BufferTree::new(3, &[]);
        let lexer = XmlLexer::new(doc.as_bytes(), &mut tags);
        let mut proj = Preprojector::new(lexer, &tree, &mut buffer);
        proj.pump_to_eof(&mut buffer).unwrap();
        let rendered = buffer.render(proj.tags());
        assert!(
            rendered.contains("mid{}"),
            "structural mid kept: {rendered}"
        );
        assert!(rendered.contains("b{r2}"), "only //b matches: {rendered}");
    }
}
