//! Engine error type.

use gcx_buffer::BufferError;
use gcx_xml::XmlError;
use std::fmt;

/// Errors produced while evaluating a query.
#[derive(Debug)]
pub enum EngineError {
    /// Malformed input stream.
    Xml(XmlError),
    /// Buffer-manager safety violation (paper safety requirement 1) or
    /// internal misuse.
    Buffer(BufferError),
    /// Output sink failure.
    Io(std::io::Error),
    /// Evaluation needed data that the input stream can no longer provide
    /// (internal bug: the projection should have buffered it).
    MissingData(String),
    /// The run was cancelled via a [`crate::engine::CancelFlag`]
    /// (cooperative cancellation; used by session runtimes to abort
    /// long-running evaluations).
    Cancelled,
}

impl EngineError {
    /// True when evaluation stopped only because the (non-blocking)
    /// input stream has no bytes available right now. The lexer has
    /// rewound to a construct boundary and every engine suspension
    /// point is idempotent: retry [`crate::engine::GcxEngine::step`]
    /// once more input arrives and evaluation continues exactly where
    /// it left off. Output-sink `Io` errors are deliberately *not*
    /// need-input: output backpressure is signalled through the output
    /// gate, never through `WouldBlock` writes.
    pub fn is_need_input(&self) -> bool {
        matches!(self, EngineError::Xml(e) if e.is_would_block())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "XML error: {e}"),
            EngineError::Buffer(e) => write!(f, "buffer error: {e}"),
            EngineError::Io(e) => write!(f, "output error: {e}"),
            EngineError::MissingData(s) => write!(f, "missing data: {s}"),
            EngineError::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xml(e) => Some(e),
            EngineError::Buffer(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::MissingData(_) => None,
            EngineError::Cancelled => None,
        }
    }
}

impl From<XmlError> for EngineError {
    fn from(e: XmlError) -> Self {
        EngineError::Xml(e)
    }
}

impl From<BufferError> for EngineError {
    fn from(e: BufferError) -> Self {
        EngineError::Buffer(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: EngineError = std::io::Error::other("sink").into();
        assert!(e.to_string().contains("sink"));
        assert!(std::error::Error::source(&e).is_some());
        let m = EngineError::MissingData("x".into());
        assert!(std::error::Error::source(&m).is_none());
    }
}
