//! Comparison semantics for XQ conditions.
//!
//! The fragment compares string values of nodes (paper Fig. 6:
//! `var/axis::ν RelOp string`). Following XPath 1.0 practice — and because
//! the XMark queries compare prices and incomes — operands that both parse
//! as numbers are compared numerically; otherwise lexicographically.
//! Comparisons over node sets are existential: `$x/p = "v"` holds when
//! *some* matched node's string value satisfies the relation.

use gcx_query::RelOp;

/// Compares two string values under `op`, numerically when both sides
/// parse as `f64`.
pub fn compare_values(left: &str, right: &str, op: RelOp) -> bool {
    let lt = left.trim();
    let rt = right.trim();
    if let (Ok(a), Ok(b)) = (lt.parse::<f64>(), rt.parse::<f64>()) {
        return match op {
            RelOp::Le => a <= b,
            RelOp::Lt => a < b,
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            RelOp::Ge => a >= b,
            RelOp::Gt => a > b,
        };
    }
    match op {
        RelOp::Le => left <= right,
        RelOp::Lt => left < right,
        RelOp::Eq => left == right,
        RelOp::Ne => left != right,
        RelOp::Ge => left >= right,
        RelOp::Gt => left > right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_when_both_numeric() {
        assert!(compare_values("9", "10", RelOp::Lt), "9 < 10 numerically");
        assert!(!compare_values("9", "10", RelOp::Gt));
        assert!(compare_values("2.5", "2.50", RelOp::Eq));
        assert!(compare_values(" 42 ", "42", RelOp::Eq), "trimmed");
    }

    #[test]
    fn string_when_not_numeric() {
        assert!(compare_values("9a", "10a", RelOp::Gt), "lexicographic");
        assert!(compare_values("abc", "abd", RelOp::Lt));
        assert!(compare_values("person0", "person0", RelOp::Eq));
        assert!(compare_values("a", "b", RelOp::Ne));
    }

    #[test]
    fn mixed_falls_back_to_string() {
        assert!(!compare_values("10", "ten", RelOp::Eq));
        assert!(compare_values("10", "ten", RelOp::Ne));
    }
}
