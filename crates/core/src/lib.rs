//! # gcx-core — the GCX streaming XQuery engine
//!
//! The primary contribution of the paper: a pull-based streaming XQuery
//! engine whose buffer manager combines static analysis (projection trees,
//! roles, signOff insertion — `gcx-query`) with dynamic analysis (active
//! garbage collection — `gcx-buffer`).
//!
//! ## Architecture (paper Fig. 11)
//!
//! ```text
//!  query evaluator  ⇆  buffer manager  ⇆  stream preprojector
//!  (engine::GcxEngine)  (gcx_buffer)       (preproject::Preprojector)
//! ```
//!
//! The evaluator runs the rewritten query strictly sequentially; when it
//! needs data that is not buffered it pumps the preprojector, which copies
//! only projection-tree matches into the buffer, annotated with roles.
//! Every signOff statement triggers role removal and localized GC.
//!
//! ## Engines
//!
//! | entry point | strategy | models |
//! |---|---|---|
//! | [`run_gcx`] | incremental projection + active GC | GCX (the paper) |
//! | [`run_no_gc_streaming`] | incremental projection, no GC | static analysis alone |
//! | [`run_static_projection`] | full projection, then evaluate | Galax + projection \[13\] |
//! | [`baseline::run_dom`] | full DOM, then evaluate | Galax/Saxon/QizX class; also the Theorem 1 oracle |

pub mod baseline;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod preproject;
pub mod value;

pub use baseline::{run_dom, run_dom_with_options};
pub use engine::{
    run_gcx, run_no_gc_streaming, run_static_projection, CancelFlag, EngineOptions, GcxEngine,
    RunReport, StepOutcome, TraceEvent,
};
pub use error::EngineError;
pub use metrics::{EngineStageMetrics, DEFAULT_STAGE_SAMPLE_EVERY};
pub use preproject::{Preprojector, PumpEvent};
pub use value::compare_values;
