//! Per-stage engine timing (sampled), shared with the serving layers.
//!
//! A request's wall time splits across five engine stages:
//!
//! | stage | what is timed |
//! |---|---|
//! | `lex` | pulling one materialized event from [`gcx_xml::XmlLexer`] |
//! | `skip` | raw byte-scanning one dead subtree (`skip_subtree`) |
//! | `match` | the [`gcx_projection::StreamMatcher`] verdict for the event |
//! | `buffer` | copying the event into the [`gcx_buffer::BufferTree`] |
//! | `emit` | serializing one result subtree to the output sink |
//!
//! Timing every event would double the cost of the cheap stages
//! (`Instant::now` is ~20–40 ns; a lexed event can be under 100 ns), so
//! the preprojector samples: every Nth pump step is timed stage by
//! stage, the rest pay one counter increment. With the default interval
//! ([`DEFAULT_STAGE_SAMPLE_EVERY`]) the measured throughput cost on the
//! XMark suite is well under the 2 % budget, and a server accumulates
//! thousands of samples per histogram within seconds of traffic.
//!
//! The struct is plain [`LatencyHistogram`]s — recording is wait-free
//! and allocation-free, so one shared `Arc<EngineStageMetrics>` can be
//! installed into every concurrent session of a server.

use gcx_obs::LatencyHistogram;

/// Default sampling interval: one timed pump step per N.
pub const DEFAULT_STAGE_SAMPLE_EVERY: u32 = 512;

/// Sampled per-stage duration histograms. See module docs.
#[derive(Debug, Default)]
pub struct EngineStageMetrics {
    /// One `XmlLexer::next_event` call (a materialized token).
    pub lex: LatencyHistogram,
    /// One `XmlLexer::skip_subtree` call (a whole dead subtree).
    pub skip: LatencyHistogram,
    /// The matcher verdict(s) for one pump step.
    pub matching: LatencyHistogram,
    /// Buffer-tree insertion/close work for one pump step.
    pub buffer: LatencyHistogram,
    /// One `write_subtree` output serialization.
    pub emit: LatencyHistogram,
}

impl EngineStageMetrics {
    /// Zeroed histograms (const, usable in statics).
    pub const fn new() -> Self {
        EngineStageMetrics {
            lex: LatencyHistogram::new(),
            skip: LatencyHistogram::new(),
            matching: LatencyHistogram::new(),
            buffer: LatencyHistogram::new(),
            emit: LatencyHistogram::new(),
        }
    }

    /// `(stage name, histogram)` pairs in pipeline order, for renderers.
    pub fn stages(&self) -> [(&'static str, &LatencyHistogram); 5] {
        [
            ("lex", &self.lex),
            ("skip", &self.skip),
            ("match", &self.matching),
            ("buffer", &self.buffer),
            ("emit", &self.emit),
        ]
    }
}
