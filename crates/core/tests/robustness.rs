//! Robustness tests: failure injection and pathological inputs. The
//! engine must return errors (never panic, never corrupt accounting) on
//! bad I/O, and handle extreme document shapes within reasonable cost.

use gcx_core::{run_gcx, EngineError, EngineOptions, GcxEngine};
use gcx_query::compile_default;
use gcx_xml::TagInterner;
use std::io::{self, Read, Write};

/// A reader that yields `prefix` and then fails.
struct FailingReader {
    data: Vec<u8>,
    pos: usize,
}

impl Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "stream died",
            ));
        }
        let n = buf.len().min(self.data.len() - self.pos).min(7);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that fails after a few bytes.
struct FailingWriter {
    budget: usize,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget < buf.len() {
            return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
        }
        self.budget -= buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn io_error_mid_stream_surfaces() {
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $b in /a/b return $b }</r>", &mut tags).unwrap();
    let reader = FailingReader {
        data: b"<a><b>x</b><b>".to_vec(),
        pos: 0,
    };
    let err = run_gcx(&compiled, &mut tags, reader, Vec::new()).unwrap_err();
    assert!(matches!(err, EngineError::Xml(_)), "got {err}");
    assert!(err.to_string().contains("stream died"), "got {err}");
}

#[test]
fn malformed_xml_surfaces() {
    for bad in [
        "<a><b></a></b>",
        "<a>",
        "</a>",
        "<a><b x=></b></a>",
        "<a>&bogus;</a>",
        "<a/><b/>",
    ] {
        let mut tags = TagInterner::new();
        let compiled = compile_default("<r>{ for $b in //b return $b }</r>", &mut tags).unwrap();
        let res = run_gcx(&compiled, &mut tags, bad.as_bytes(), Vec::new());
        assert!(res.is_err(), "malformed input {bad:?} must error");
    }
}

#[test]
fn failing_writer_surfaces() {
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $b in /a/b return $b }</r>", &mut tags).unwrap();
    let err = run_gcx(
        &compiled,
        &mut tags,
        "<a><b>payload</b></a>".as_bytes(),
        FailingWriter { budget: 4 },
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::Io(_)), "got {err}");
}

#[test]
fn deep_nesting() {
    // 2000 levels of <d>…</d> with a single <k/> at the bottom.
    let depth = 2000;
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push_str("<d>");
    }
    doc.push_str("<k/>");
    for _ in 0..depth {
        doc.push_str("</d>");
    }
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $k in //k return <hit/> }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), "<r><hit></hit></r>");
    assert_eq!(report.safety, Some(true));
    // Only the k is buffered (promoted to the root): the d-chain is
    // projected away.
    assert!(
        report.stats.peak_nodes < 8,
        "peak {}",
        report.stats.peak_nodes
    );
}

#[test]
fn deep_nesting_with_full_buffering() {
    // When the query outputs the whole chain, the buffer must serialize a
    // 1000-deep subtree without issue.
    let depth = 1000;
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push_str("<d>");
    }
    doc.push('x');
    for _ in 0..depth {
        doc.push_str("</d>");
    }
    let wrapped = format!("<a>{doc}</a>");
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $d in /a/d return $d }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, wrapped.as_bytes(), &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), format!("<r>{doc}</r>"));
    assert_eq!(report.safety, Some(true));
}

#[test]
fn wide_fanout() {
    let n = 50_000;
    let mut doc = String::from("<a>");
    for i in 0..n {
        doc.push_str(&format!("<b>{i}</b>"));
    }
    doc.push_str("</a>");
    let mut tags = TagInterner::new();
    let compiled =
        compile_default("<r>{ for $b in /a/b return $b/text() }</r>", &mut tags).unwrap();
    let mut sink = std::io::sink();
    let report = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut sink).unwrap();
    assert_eq!(report.safety, Some(true));
    assert!(
        report.stats.peak_nodes < 16,
        "streaming keeps fanout out of memory: {}",
        report.stats.peak_nodes
    );
}

#[test]
fn huge_text_node() {
    let big = "lorem ipsum ".repeat(100_000); // ~1.2 MB of text
    let doc = format!("<a><t>{big}</t><t>small</t></a>");
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $t in /a/t return $t }</r>", &mut tags).unwrap();
    let mut sink = std::io::sink();
    let report = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut sink).unwrap();
    assert_eq!(report.safety, Some(true));
    assert!(report.output_bytes as usize > big.len());
    // The big text is purged after output; live bytes return to baseline.
    assert_eq!(report.stats.live_nodes, 1);
}

#[test]
fn early_termination_skips_input_tail() {
    // The query only touches /a/first — GCX must not read beyond what it
    // needs… except for root-scope signOffs, which for this query do not
    // reference the tail either. Verify the tail is *skipped*: each junk
    // subtree costs one materialized open event, and its body is consumed
    // by the lexer's raw scanner (bytes_skipped), never tokenized.
    let mut doc = String::from("<a><first><x>1</x></first>");
    for _ in 0..1000 {
        doc.push_str("<junk><deep><deeper>zzz</deeper></deep></junk>");
    }
    doc.push_str("</a>");
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $f in /a/first return $f }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).unwrap();
    assert_eq!(
        String::from_utf8(out.clone()).unwrap(),
        "<r><first><x>1</x></first></r>"
    );
    assert!(
        report.tokens_skipped >= 1000,
        "every junk subtree is fast-skipped: {}",
        report.tokens_skipped
    );
    assert!(
        report.bytes_skipped > 30_000,
        "the junk bodies are raw-scanned, not tokenized: {}",
        report.bytes_skipped
    );
    assert!(report.stats.peak_nodes < 8);

    // Differential: the per-event skip path (skip-mode lexing off) is
    // byte-identical, with identical buffer peaks.
    let mut tags2 = TagInterner::new();
    let compiled2 = compile_default("<r>{ for $f in /a/first return $f }</r>", &mut tags2).unwrap();
    let mut out2 = Vec::new();
    let opts = EngineOptions {
        skip_lexing: false,
        ..Default::default()
    };
    let report2 = GcxEngine::new(&compiled2, &mut tags2, doc.as_bytes(), &mut out2, opts)
        .run()
        .unwrap();
    assert_eq!(out, out2, "skip-mode output identical to per-event skip");
    assert_eq!(report.stats.peak_nodes, report2.stats.peak_nodes);
    assert_eq!(report2.bytes_skipped, 0, "per-event path raw-skips nothing");
}

#[test]
fn unused_variable_scopes() {
    // Loops whose bodies never touch their variable still drive iteration
    // counts (XQuery semantics): 3 b's → 3 hits.
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $b in /a/b return <hit/> }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    let report = run_gcx(
        &compiled,
        &mut tags,
        "<a><b/><b>x</b><b><c/></b></a>".as_bytes(),
        &mut out,
    )
    .unwrap();
    assert_eq!(
        String::from_utf8(out).unwrap(),
        "<r><hit></hit><hit></hit><hit></hit></r>"
    );
    assert_eq!(report.safety, Some(true));
}

#[test]
fn empty_input_is_an_empty_document() {
    // A zero-byte stream is treated as a document with no element below
    // the virtual root (relaxed vs. strict XML, convenient for pipelines).
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $x in //y return $x }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, "".as_bytes(), &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), "<r></r>");
    assert_eq!(report.safety, Some(true));
}

#[test]
fn empty_document_element() {
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $x in //y return $x }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, "<a/>".as_bytes(), &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), "<r></r>");
    assert_eq!(report.safety, Some(true));
}

#[test]
fn utf8_content_roundtrips() {
    let doc = "<a><n>Grüße — ØØ</n><n>日本語テキスト</n></a>";
    let mut tags = TagInterner::new();
    let compiled = compile_default("<r>{ for $n in /a/n return $n }</r>", &mut tags).unwrap();
    let mut out = Vec::new();
    run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).unwrap();
    let s = String::from_utf8(out).unwrap();
    assert!(s.contains("Grüße — ØØ"));
    assert!(s.contains("日本語テキスト"));
}
