//! Model-based testing of the buffer manager: random document shapes,
//! random role assignments, random signOff orders — checked against the
//! declarative lifetime semantics of the paper:
//!
//! * a node is live exactly while its subtree carries roles or pins (or
//!   is covered by an ancestor aggregate), or its closing tag is pending;
//! * after all roles are signed off, only the virtual root survives;
//! * buffer footprint never increases across a signOff;
//! * role accounting balances exactly.

use gcx_buffer::{BufNodeId, BufferTree};
use gcx_projection::Role;
use gcx_xml::TagInterner;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One randomly-built buffered document: nodes in document order with
/// their parents and assigned roles.
struct Workload {
    /// (parent index in `nodes` or None for root-child, roles)
    nodes: Vec<(Option<usize>, Vec<Role>)>,
    role_count: usize,
}

fn random_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let role_count = rng.random_range(1..6usize);
    let n = rng.random_range(1..25usize);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        // Parent must precede in document order; sometimes attach to the
        // most recent node for depth, sometimes anywhere for breadth.
        let parent = if i == 0 {
            None
        } else if rng.random_bool(0.6) {
            Some(i - 1)
        } else {
            Some(rng.random_range(0..i))
        };
        let mut roles = Vec::new();
        for _ in 0..rng.random_range(0..3usize) {
            roles.push(Role(rng.random_range(0..role_count) as u32));
        }
        nodes.push((parent, roles));
    }
    Workload { nodes, role_count }
}

/// Builds the workload into a buffer (depth-first order is simulated by
/// finishing nodes once all their children exist — here: after the build,
/// in reverse document order, which respects nesting).
fn build(w: &Workload, b: &mut BufferTree, tags: &mut TagInterner) -> Vec<BufNodeId> {
    let tag = tags.intern("x");
    let mut ids: Vec<BufNodeId> = Vec::with_capacity(w.nodes.len());
    for (parent, roles) in &w.nodes {
        let p = parent.map(|i| ids[i]).unwrap_or(BufferTree::ROOT);
        let id = b.open_element(p, tag).unwrap();
        for &r in roles {
            b.add_role(id, r);
        }
        ids.push(id);
    }
    // Finish in reverse creation order (children before parents — valid
    // because parents always precede children in `nodes`). Nodes purged at
    // close time (role-free subtrees) are skipped naturally: `finish`
    // handles them, but their ancestors with roles survive.
    for &id in ids.iter().rev() {
        if b.is_alive(id) {
            b.finish(id);
        }
    }
    b.finish(BufferTree::ROOT);
    ids
}

fn check_case(seed: u64) {
    let w = random_workload(seed);
    let mut tags = TagInterner::new();
    let mut b = BufferTree::new(w.role_count, &[]);
    let ids = build(&w, &mut b, &mut tags);

    // Collect surviving role instances: (node index, role), shuffled.
    let mut pending: Vec<(usize, Role)> = Vec::new();
    for (i, (_, roles)) in w.nodes.iter().enumerate() {
        if b.is_alive(ids[i]) {
            for &r in roles {
                pending.push((i, r));
            }
        } else {
            // Purged at close ⇒ its whole subtree carried no roles; its
            // own list must be empty.
            assert!(roles.is_empty(), "node purged while holding roles");
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    // Fisher-Yates shuffle.
    for i in (1..pending.len()).rev() {
        let j = rng.random_range(0..=i);
        pending.swap(i, j);
    }

    let mut last_bytes = b.stats().live_bytes;
    for (i, r) in pending {
        assert!(b.is_alive(ids[i]), "role-holding node must still be alive");
        b.sign_off(ids[i], r, 1).expect("defined removal");
        let now = b.stats().live_bytes;
        assert!(
            now <= last_bytes,
            "buffer footprint grew across a signOff ({last_bytes} -> {now})"
        );
        last_bytes = now;
    }
    assert!(b.all_roles_returned(), "accounting balances");
    assert_eq!(
        b.stats().live_nodes,
        1,
        "only the virtual root survives after all signOffs (seed {seed})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_lifetimes(seed in 0u64..1_000_000) {
        check_case(seed);
    }
}

#[test]
fn pinned_seeds() {
    for seed in [0, 1, 2, 99, 4242, 123456] {
        check_case(seed);
    }
}

/// Pins interact with random signOff orders: pinning a random node during
/// the teardown defers its purge but never breaks accounting.
#[test]
fn pins_during_teardown() {
    for seed in 0..200u64 {
        let w = random_workload(seed);
        let mut tags = TagInterner::new();
        let mut b = BufferTree::new(w.role_count, &[]);
        let ids = build(&w, &mut b, &mut tags);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let alive: Vec<usize> = (0..w.nodes.len()).filter(|&i| b.is_alive(ids[i])).collect();
        let pinned = alive
            .get(
                rng.random_range(0..alive.len().max(1))
                    .min(alive.len().saturating_sub(1)),
            )
            .copied();
        if let Some(p) = pinned {
            b.pin(ids[p]);
        }
        for (i, (_, roles)) in w.nodes.iter().enumerate() {
            if !b.is_alive(ids[i]) {
                continue;
            }
            for &r in roles {
                b.sign_off(ids[i], r, 1).expect("defined");
            }
        }
        if let Some(p) = pinned {
            assert!(b.is_alive(ids[p]), "pinned node survives");
            b.unpin(ids[p]);
        }
        assert!(b.all_roles_returned());
        assert_eq!(b.stats().live_nodes, 1, "seed {seed}");
    }
}
