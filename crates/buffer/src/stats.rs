//! Buffer statistics: live footprint, high watermarks, GC counters.
//!
//! The paper measures the "high watermark of non-swapped memory
//! consumption" of whole processes; our harness instead measures the buffer
//! manager's own footprint, identically for GCX and the baseline engines,
//! because that is the quantity the buffer-minimization technique controls.

/// Counters kept by a [`crate::BufferTree`]. All engines report through the
/// same struct so Table 1 comparisons are apples-to-apples.
#[derive(Debug, Default, Clone)]
pub struct BufferStats {
    /// Currently live (allocated, not purged) nodes.
    pub live_nodes: usize,
    /// Estimated live bytes: fixed node cost + text payload + role sets.
    pub live_bytes: usize,
    /// Maximum of `live_nodes` ever observed.
    pub peak_nodes: usize,
    /// Maximum of `live_bytes` ever observed.
    pub peak_bytes: usize,
    /// Nodes ever created.
    pub nodes_created: u64,
    /// Nodes purged by garbage collection (incl. close-time purges).
    pub nodes_purged: u64,
    /// Role instances assigned.
    pub roles_assigned: u64,
    /// Role instances removed by signOff.
    pub roles_removed: u64,
    /// Number of signOff statements processed.
    pub signoffs: u64,
    /// Nodes visited by the localized GC search (cost of Fig. 10).
    pub gc_visits: u64,
}

impl BufferStats {
    /// Records an allocation of `bytes`.
    pub(crate) fn alloc(&mut self, bytes: usize) {
        self.live_nodes += 1;
        self.live_bytes += bytes;
        self.nodes_created += 1;
        if self.live_nodes > self.peak_nodes {
            self.peak_nodes = self.live_nodes;
        }
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
    }

    /// Records a purge of `bytes`.
    pub(crate) fn free(&mut self, bytes: usize) {
        debug_assert!(self.live_nodes > 0);
        self.live_nodes -= 1;
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
        self.nodes_purged += 1;
    }

    /// Records growth of an existing node (e.g. a role added).
    pub(crate) fn grow(&mut self, bytes: usize) {
        self.live_bytes += bytes;
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
    }

    /// Human-readable peak, e.g. `1.2MB`, in the style of paper Table 1.
    pub fn peak_human(&self) -> String {
        human_bytes(self.peak_bytes)
    }
}

/// Formats a byte count the way the paper's Table 1 does (`1.2MB`, `880MB`,
/// `1.8GB`).
pub fn human_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_tracks_peak() {
        let mut s = BufferStats::default();
        s.alloc(100);
        s.alloc(200);
        assert_eq!(s.peak_bytes, 300);
        assert_eq!(s.peak_nodes, 2);
        s.free(200);
        assert_eq!(s.live_bytes, 100);
        assert_eq!(s.peak_bytes, 300, "peak is sticky");
        s.alloc(50);
        assert_eq!(s.peak_bytes, 300);
        assert_eq!(s.live_nodes, 2);
    }

    #[test]
    fn grow_moves_peak() {
        let mut s = BufferStats::default();
        s.alloc(10);
        s.grow(500);
        assert_eq!(s.peak_bytes, 510);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(1_258_291), "1.2MB");
        assert!(human_bytes(2 * 1024 * 1024 * 1024).starts_with("2.0"));
    }
}
