//! Buffer statistics: live footprint, high watermarks, GC counters.
//!
//! The paper measures the "high watermark of non-swapped memory
//! consumption" of whole processes; our harness instead measures the buffer
//! manager's own footprint, identically for GCX and the baseline engines,
//! because that is the quantity the buffer-minimization technique controls.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counters kept by a [`crate::BufferTree`]. All engines report through the
/// same struct so Table 1 comparisons are apples-to-apples.
#[derive(Debug, Default, Clone)]
pub struct BufferStats {
    /// Currently live (allocated, not purged) nodes.
    pub live_nodes: usize,
    /// Estimated live bytes: fixed node cost + text payload + role sets.
    pub live_bytes: usize,
    /// Maximum of `live_nodes` ever observed.
    pub peak_nodes: usize,
    /// Maximum of `live_bytes` ever observed.
    pub peak_bytes: usize,
    /// Nodes ever created.
    pub nodes_created: u64,
    /// Nodes purged by garbage collection (incl. close-time purges).
    pub nodes_purged: u64,
    /// Role instances assigned.
    pub roles_assigned: u64,
    /// Role instances removed by signOff.
    pub roles_removed: u64,
    /// Number of signOff statements processed.
    pub signoffs: u64,
    /// Nodes visited by the localized GC search (cost of Fig. 10).
    pub gc_visits: u64,
}

impl BufferStats {
    /// Records an allocation of `bytes`.
    pub(crate) fn alloc(&mut self, bytes: usize) {
        self.live_nodes += 1;
        self.live_bytes += bytes;
        self.nodes_created += 1;
        if self.live_nodes > self.peak_nodes {
            self.peak_nodes = self.live_nodes;
        }
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
    }

    /// Records a purge of `bytes`.
    pub(crate) fn free(&mut self, bytes: usize) {
        debug_assert!(self.live_nodes > 0);
        self.live_nodes -= 1;
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
        self.nodes_purged += 1;
    }

    /// Records growth of an existing node (e.g. a role added).
    pub(crate) fn grow(&mut self, bytes: usize) {
        self.live_bytes += bytes;
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
    }

    /// Human-readable peak, e.g. `1.2MB`, in the style of paper Table 1.
    pub fn peak_human(&self) -> String {
        human_bytes(self.peak_bytes)
    }
}

/// A shared, thread-safe mirror of the buffer's live footprint.
///
/// The engine evaluates on one thread; an observability plane (the
/// `/stats` endpoint of gcx-net) samples from others *while the run is in
/// flight* — [`BufferStats`] only surfaces at `finish()`. Installing a
/// `LiveBufferStats` handle on a [`crate::BufferTree`] makes the tree
/// publish its live/peak figures with relaxed atomic stores after every
/// footprint-changing operation; readers get a consistent-enough snapshot
/// for monitoring without any locking on the hot path. When no handle is
/// installed the cost is a single branch per operation.
#[derive(Debug, Default)]
pub struct LiveBufferStats {
    /// Currently live (allocated, not purged) nodes.
    pub live_nodes: AtomicUsize,
    /// High watermark of `live_nodes`.
    pub peak_nodes: AtomicUsize,
    /// Estimated live bytes (fixed node cost + text payload + role sets).
    pub live_bytes: AtomicUsize,
    /// High watermark of `live_bytes`.
    pub peak_bytes: AtomicUsize,
    /// Bytes currently held by the buffer's text arena.
    pub text_arena_bytes: AtomicUsize,
    /// Nodes ever created.
    pub nodes_created: AtomicU64,
    /// Nodes purged by garbage collection.
    pub nodes_purged: AtomicU64,
}

impl LiveBufferStats {
    /// Publishes a snapshot (called by the owning buffer after mutations).
    pub fn publish(&self, stats: &BufferStats, text_arena_bytes: usize) {
        self.live_nodes.store(stats.live_nodes, Ordering::Relaxed);
        self.peak_nodes.store(stats.peak_nodes, Ordering::Relaxed);
        self.live_bytes.store(stats.live_bytes, Ordering::Relaxed);
        self.peak_bytes.store(stats.peak_bytes, Ordering::Relaxed);
        self.text_arena_bytes
            .store(text_arena_bytes, Ordering::Relaxed);
        self.nodes_created
            .store(stats.nodes_created, Ordering::Relaxed);
        self.nodes_purged
            .store(stats.nodes_purged, Ordering::Relaxed);
    }

    /// Reads a plain snapshot: `(live_nodes, peak_nodes, live_bytes,
    /// peak_bytes, text_arena_bytes, nodes_created, nodes_purged)`.
    #[allow(clippy::type_complexity)]
    pub fn snapshot(&self) -> (usize, usize, usize, usize, usize, u64, u64) {
        (
            self.live_nodes.load(Ordering::Relaxed),
            self.peak_nodes.load(Ordering::Relaxed),
            self.live_bytes.load(Ordering::Relaxed),
            self.peak_bytes.load(Ordering::Relaxed),
            self.text_arena_bytes.load(Ordering::Relaxed),
            self.nodes_created.load(Ordering::Relaxed),
            self.nodes_purged.load(Ordering::Relaxed),
        )
    }
}

/// Shared accounting hook charged for the engine buffer's own footprint.
///
/// The service-level `MemoryBudget` (gcx-service) historically bounded
/// only queued I/O chunks; implementing this trait lets the same budget
/// see *buffered nodes and text-arena bytes*. Reservations are **hard**:
/// a failed [`BufferAccounting::reserve`] makes the buffer refuse the
/// allocation with [`crate::BufferError::BudgetExceeded`], which the
/// engine surfaces as a clean per-session error instead of growing
/// without bound. Only the stable per-node cost (fixed node size + text
/// payload) is charged, so every reserve has an exactly matching release.
pub trait BufferAccounting: Send + Sync {
    /// Attempts to reserve `bytes`; `false` refuses the allocation.
    fn reserve(&self, bytes: usize) -> bool;
    /// Returns `bytes` previously reserved.
    fn release(&self, bytes: usize);
    /// Bytes currently accounted (diagnostics for error messages).
    fn used(&self) -> usize;
    /// The configured limit (diagnostics for error messages).
    fn limit(&self) -> usize;
}

/// Formats a byte count the way the paper's Table 1 does (`1.2MB`, `880MB`,
/// `1.8GB`).
pub fn human_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_tracks_peak() {
        let mut s = BufferStats::default();
        s.alloc(100);
        s.alloc(200);
        assert_eq!(s.peak_bytes, 300);
        assert_eq!(s.peak_nodes, 2);
        s.free(200);
        assert_eq!(s.live_bytes, 100);
        assert_eq!(s.peak_bytes, 300, "peak is sticky");
        s.alloc(50);
        assert_eq!(s.peak_bytes, 300);
        assert_eq!(s.live_nodes, 2);
    }

    #[test]
    fn grow_moves_peak() {
        let mut s = BufferStats::default();
        s.alloc(10);
        s.grow(500);
        assert_eq!(s.peak_bytes, 510);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(1_258_291), "1.2MB");
        assert!(human_bytes(2 * 1024 * 1024 * 1024).starts_with("2.0"));
    }
}
