//! Serialization of buffered subtrees to output tokens.
//!
//! When the evaluator outputs a variable binding (`$x` or `$x/axis::ν`),
//! the buffered subtree is emitted to the output stream. Marked
//! (semantically deleted) nodes are never emitted; within output subtrees
//! every live node carries roles (the `dos::node()` dependency guarantees
//! it), so marked nodes can only be stale structural leftovers.

use crate::node::{BufKind, BufNodeId, BufferTree};
use gcx_xml::{TagInterner, XmlToken, XmlWriter};
use std::io::{self, Write};

impl BufferTree {
    /// Writes the subtree rooted at `id` to `w` as XML.
    pub fn write_subtree<W: Write>(
        &self,
        id: BufNodeId,
        tags: &TagInterner,
        w: &mut XmlWriter<W>,
    ) -> io::Result<()> {
        if self.is_marked(id) {
            return Ok(());
        }
        match self.kind(id) {
            BufKind::Root => {
                let mut c = self.first_child(id);
                while let Some(x) = c {
                    self.write_subtree(x, tags, w)?;
                    c = self.next_sibling(x);
                }
                Ok(())
            }
            BufKind::Text(sp) => w.text(self.span_str(*sp)),
            BufKind::Element(tag) => {
                let tag = *tag;
                w.open(tag, tags)?;
                let mut c = self.first_child(id);
                while let Some(x) = c {
                    self.write_subtree(x, tags, w)?;
                    c = self.next_sibling(x);
                }
                w.close(tag, tags)
            }
        }
    }

    /// Collects the subtree as tokens (tests, traces).
    pub fn subtree_tokens(&self, id: BufNodeId, out: &mut Vec<XmlToken>) {
        if self.is_marked(id) {
            return;
        }
        match self.kind(id) {
            BufKind::Root => {
                let mut c = self.first_child(id);
                while let Some(x) = c {
                    self.subtree_tokens(x, out);
                    c = self.next_sibling(x);
                }
            }
            BufKind::Text(sp) => out.push(XmlToken::Text(self.span_str(*sp).to_string())),
            BufKind::Element(tag) => {
                let tag = *tag;
                out.push(XmlToken::Open(tag));
                let mut c = self.first_child(id);
                while let Some(x) = c {
                    self.subtree_tokens(x, out);
                    c = self.next_sibling(x);
                }
                out.push(XmlToken::Close(tag));
            }
        }
    }

    /// The string value of a buffered node: concatenation of all text in
    /// its subtree (XPath `string()`; needed for comparisons).
    pub fn string_value(&self, id: BufNodeId) -> String {
        let mut s = String::new();
        self.collect_text(id, &mut s);
        s
    }

    /// [`Self::string_value`] appended into a caller-provided (reusable)
    /// string — the comparison hot path evaluates one of these per
    /// condition per binding and must not allocate in steady state.
    pub fn string_value_into(&self, id: BufNodeId, out: &mut String) {
        self.collect_text(id, out);
    }

    fn collect_text(&self, id: BufNodeId, out: &mut String) {
        if self.is_marked(id) {
            return;
        }
        if let BufKind::Text(sp) = self.kind(id) {
            out.push_str(self.span_str(*sp));
            return;
        }
        let mut c = self.first_child(id);
        while let Some(x) = c {
            self.collect_text(x, out);
            c = self.next_sibling(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_projection::Role;
    use gcx_xml::TagInterner;

    fn build() -> (BufferTree, TagInterner, BufNodeId) {
        let mut tags = TagInterner::new();
        let book = tags.intern("book");
        let title = tags.intern("title");
        let mut b = BufferTree::new(4, &[]);
        let n1 = b.open_element(BufferTree::ROOT, book).unwrap();
        b.add_role(n1, Role(0));
        let n2 = b.open_element(n1, title).unwrap();
        b.add_role(n2, Role(0));
        let t = b.add_text(n2, "T<&ext").unwrap();
        b.add_role(t, Role(0));
        b.finish(n2);
        b.finish(n1);
        (b, tags, n1)
    }

    #[test]
    fn serializes_with_escaping() {
        let (b, tags, n1) = build();
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        b.write_subtree(n1, &tags, &mut w).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<book><title>T&lt;&amp;ext</title></book>"
        );
    }

    #[test]
    fn tokens_roundtrip() {
        let (b, tags, n1) = build();
        let mut toks = Vec::new();
        b.subtree_tokens(n1, &mut toks);
        assert_eq!(toks.len(), 5);
        let _ = tags;
    }

    #[test]
    fn string_value_concatenates() {
        let (b, _tags, n1) = build();
        assert_eq!(b.string_value(n1), "T<&ext");
    }

    #[test]
    fn marked_nodes_are_skipped() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let y = tags.intern("y");
        let mut b = BufferTree::new(4, &[]);
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n1, Role(0));
        let dead = b.open_element(n1, y).unwrap();
        b.add_role(dead, Role(1));
        b.pin(dead); // keep it navigable
        b.finish(dead);
        b.sign_off(dead, Role(1), 1).unwrap();
        // dead is pinned: not purged, not marked (pins block gc) — unpin
        // purges it.
        b.unpin(dead);
        b.finish(n1);
        let mut toks = Vec::new();
        b.subtree_tokens(n1, &mut toks);
        assert_eq!(toks.len(), 2, "only <x></x> remains");
    }
}
