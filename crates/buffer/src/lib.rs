//! # gcx-buffer — the GCX buffer manager
//!
//! Implements §5/§6 of the paper:
//!
//! * [`BufferTree`] — the single buffer holding the (currently relevant)
//!   projected document tree, "with parent-child and next-sibling pointers
//!   between nodes, thus keeping the memory overhead for the tree
//!   representation small" (paper §6). Nodes carry role multisets.
//! * Active garbage collection ([`BufferTree::sign_off`], paper Fig. 10):
//!   when a node loses a role, a localized bottom-up search purges every
//!   *irrelevant* node (no roles on itself or any descendant). Unfinished
//!   nodes are marked and purged once their closing tag arrives.
//! * [`BufferStats`] — live-node/byte accounting with high watermarks; this
//!   is the "main memory consumption" measure reported by the benchmark
//!   harness (paper Table 1).
//!
//! Engineering notes (documented deviations in DESIGN.md):
//! * Each node maintains `subtree_roles`/`subtree_pins` counters so the
//!   irrelevance check is O(1).
//! * Cursor *pins* keep nodes navigable while a for-loop iterates past
//!   them; a pinned irrelevant node is marked and purged on unpin.
//! * Aggregate roles (paper §6) are tracked per role id; removing the last
//!   covering aggregate instance triggers a pruning sweep that restores
//!   the exact purge timing of the non-aggregated scheme.

pub mod node;
pub mod serialize;
pub mod stats;

pub use node::{BufKind, BufNodeId, BufferError, BufferTree, TextSpan};
pub use stats::{BufferAccounting, BufferStats, LiveBufferStats};
