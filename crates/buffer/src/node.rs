//! The buffer tree and active garbage collection (paper §5, §6, Fig. 10).

use crate::stats::{BufferAccounting, BufferStats, LiveBufferStats};
use gcx_obs::{FlightRecorder, SpanKind};
use gcx_projection::{Role, RoleSet};
use gcx_xml::TagId;
use std::fmt;
use std::sync::Arc;

/// High-water trace events fire only when `peak_bytes` crosses a new
/// multiple of this step — per-allocation peaks would drown the trace.
const HIGH_WATER_STEP: usize = 64 * 1024;

/// Index of a node in the buffer arena. Slots are recycled after purging;
/// the engine guarantees (via roles and pins) that it never dereferences a
/// purged id. Debug builds verify liveness on every access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufNodeId(pub u32);

impl BufNodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Address of a text node's content within the buffer's shared text
/// arena: an `(offset, len)` pair. Node churn no longer churns the
/// allocator — text bytes live in one append-only arena per buffer,
/// reclaimed wholesale by the garbage-collection sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextSpan {
    /// Byte offset into [`BufferTree`]'s text arena.
    pub offset: u32,
    /// Length in bytes.
    pub len: u32,
}

impl TextSpan {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        let start = self.offset as usize;
        start..start + self.len as usize
    }
}

/// Payload of a buffered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufKind {
    /// The virtual document root; never purged.
    Root,
    /// An element with an interned tag.
    Element(TagId),
    /// Character data, stored in the buffer's text arena.
    Text(TextSpan),
}

/// Errors surfaced by buffer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// A signOff removed more instances of a role than a node carries —
    /// safety requirement (1) of the paper is violated.
    UndefinedRoleRemoval {
        node: u32,
        role: Role,
        wanted: u32,
        had: u32,
    },
    /// Access to a node slot that is not alive (engine bug).
    DeadNode(u32),
    /// Buffering one more node would exceed the installed
    /// [`BufferAccounting`] budget. The document genuinely needs more
    /// buffer than the session is allowed; the engine surfaces this as a
    /// clean per-session error.
    BudgetExceeded {
        /// Bytes the refused allocation needed.
        requested: usize,
        /// Bytes accounted when the reservation was refused.
        used: usize,
        /// The accounting limit.
        limit: usize,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::UndefinedRoleRemoval {
                node,
                role,
                wanted,
                had,
            } => write!(
                f,
                "undefined role removal: node {node} holds {had} instance(s) of {role}, \
                 signOff removed {wanted} (safety requirement 1 violated)"
            ),
            BufferError::DeadNode(n) => write!(f, "access to purged buffer node {n}"),
            BufferError::BudgetExceeded {
                requested,
                used,
                limit,
            } => write!(
                f,
                "memory budget exceeded: buffering {requested}B more engine data \
                 does not fit ({used}B used of {limit}B)"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

struct Node {
    kind: BufKind,
    parent: Option<BufNodeId>,
    first_child: Option<BufNodeId>,
    last_child: Option<BufNodeId>,
    prev_sibling: Option<BufNodeId>,
    next_sibling: Option<BufNodeId>,
    roles: RoleSet,
    /// Total role instances in this node's subtree (including itself).
    subtree_roles: u32,
    /// Total pins in this node's subtree (including itself).
    subtree_pins: u32,
    /// Pins on this node (active evaluator cursors).
    pins: u32,
    /// Number of *aggregate* role instances on this node.
    own_agg: u32,
    /// Closing tag seen.
    finished: bool,
    /// Fig. 10: irrelevant but unfinished/pinned — purge when possible.
    marked: bool,
    alive: bool,
}

impl Node {
    fn bytes(&self) -> usize {
        std::mem::size_of::<Node>()
            + match &self.kind {
                BufKind::Text(sp) => sp.len as usize,
                _ => 0,
            }
            + self.roles.approx_bytes()
    }
}

/// The GCX buffer: a projected document tree with role multisets and
/// active garbage collection. See crate docs.
pub struct BufferTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    stats: BufferStats,
    /// `is_aggregate[r]` — static per-role flag from the projection tree.
    is_aggregate: Vec<bool>,
    /// Per-role assigned/removed instance counters (safety accounting).
    assigned: Vec<u64>,
    removed: Vec<u64>,
    /// Append-only text arena addressed by [`TextSpan`]s. Freed spans at
    /// the arena tail are truncated immediately; otherwise the arena is
    /// cleared wholesale once no live text node references it, so the
    /// steady-state streaming pattern (buffer a little, GC it away)
    /// reuses one capacity forever.
    text: Vec<u8>,
    /// Bytes of the arena referenced by live text nodes.
    live_text_bytes: usize,
    /// Optional atomic mirror of the live footprint, published after
    /// every footprint-changing operation (live `/stats` sampling).
    live: Option<Arc<LiveBufferStats>>,
    /// Pooled traversal stack for subtree purges (taken/restored by
    /// `delete_subtree`; capacity sticks across GC sweeps).
    sweep: Vec<BufNodeId>,
    /// Optional shared budget charged for the *stable* per-node cost
    /// (fixed node size + text payload; role growth is excluded so every
    /// reserve has an exactly matching release).
    accounting: Option<Arc<dyn BufferAccounting>>,
    /// Bytes currently reserved against `accounting` (released on purge
    /// and wholesale on drop).
    accounted_bytes: usize,
    /// Optional flight recorder + trace ID: buffer events (node buffered,
    /// signOff, subtree delete, budget reserve/reject, high-water) are
    /// recorded as instants stamped with `stream_offset`.
    flight: Option<(Arc<FlightRecorder>, u64)>,
    /// Byte offset in the input stream of the event currently being
    /// applied (pushed by the preprojector before each buffer mutation).
    stream_offset: u64,
}

impl BufferTree {
    /// The virtual root id.
    pub const ROOT: BufNodeId = BufNodeId(0);

    /// Creates a buffer whose role universe has `role_count` roles;
    /// `aggregate_roles` lists the roles flagged aggregate (paper §6).
    pub fn new(role_count: usize, aggregate_roles: &[Role]) -> Self {
        let mut is_aggregate = vec![false; role_count];
        for r in aggregate_roles {
            is_aggregate[r.index()] = true;
        }
        let mut tree = BufferTree {
            nodes: Vec::with_capacity(1024),
            // Pre-sized: the free list and sweep stack grow with GC churn
            // from the very first purge — reserving here keeps the
            // steady-state purge loop off the allocator.
            free: Vec::with_capacity(256),
            stats: BufferStats::default(),
            is_aggregate,
            assigned: vec![0; role_count],
            removed: vec![0; role_count],
            text: Vec::new(),
            live_text_bytes: 0,
            live: None,
            sweep: Vec::with_capacity(64),
            accounting: None,
            accounted_bytes: 0,
            flight: None,
            stream_offset: 0,
        };
        let root = tree
            .alloc(BufKind::Root, None)
            .expect("no accounting installed at construction");
        debug_assert_eq!(root, Self::ROOT);
        // The root is never purged; it is born finished once the stream
        // ends, but unfinished status is irrelevant for it.
        tree
    }

    /// Buffer statistics (live/peak nodes and bytes, GC counters).
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Installs an atomic mirror of the live footprint; other threads can
    /// sample it mid-run (see [`LiveBufferStats`]). Publishes the current
    /// state immediately.
    pub fn set_live_stats(&mut self, live: Arc<LiveBufferStats>) {
        live.publish(&self.stats, self.text.len());
        self.live = Some(live);
    }

    /// Installs a shared accounting hook charged for the engine buffer's
    /// stable per-node cost. Once installed, node construction fails with
    /// [`BufferError::BudgetExceeded`] when the hook refuses a
    /// reservation. Nodes already buffered stay accounted until purged
    /// (or until the tree drops).
    pub fn set_accounting(&mut self, accounting: Arc<dyn BufferAccounting>) {
        self.accounting = Some(accounting);
    }

    /// Installs a flight recorder: buffer events for this tree are
    /// recorded under `trace_id` as instants stamped with the input
    /// stream offset (see [`BufferTree::set_stream_offset`]).
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>, trace_id: u64) {
        self.flight = Some((recorder, trace_id));
    }

    /// Updates the input-stream byte offset stamped onto subsequent
    /// buffer events. The preprojector pushes the lexer offset here
    /// before applying each stream event (only when a recorder is
    /// installed).
    #[inline]
    pub fn set_stream_offset(&mut self, offset: u64) {
        self.stream_offset = offset;
    }

    /// Records a buffer-event instant when a recorder is installed.
    #[inline]
    fn trace_event(&self, kind: SpanKind, value: u64) {
        if let Some((rec, tid)) = &self.flight {
            rec.record_instant(*tid, kind, self.stream_offset, value);
        }
    }

    /// The stable, reserve/release-symmetric accounting cost of a node.
    #[inline]
    fn charge_for(kind: &BufKind) -> usize {
        std::mem::size_of::<Node>()
            + match kind {
                BufKind::Text(sp) => sp.len as usize,
                _ => 0,
            }
    }

    /// Pushes the current footprint to the installed live mirror.
    #[inline]
    fn publish_live(&self) {
        if let Some(live) = &self.live {
            live.publish(&self.stats, self.text.len());
        }
    }

    /// Per-role (assigned, removed) instance counters.
    pub fn role_accounting(&self, role: Role) -> (u64, u64) {
        (self.assigned[role.index()], self.removed[role.index()])
    }

    /// True when every assigned role instance has been removed — safety
    /// requirement (2) of the paper after complete evaluation.
    pub fn all_roles_returned(&self) -> bool {
        self.assigned.iter().zip(&self.removed).all(|(a, r)| a == r)
    }

    fn alloc(
        &mut self,
        kind: BufKind,
        parent: Option<BufNodeId>,
    ) -> Result<BufNodeId, BufferError> {
        if let Some(acc) = &self.accounting {
            let requested = Self::charge_for(&kind);
            if !acc.reserve(requested) {
                self.trace_event(SpanKind::BudgetReject, requested as u64);
                return Err(BufferError::BudgetExceeded {
                    requested,
                    used: acc.used(),
                    limit: acc.limit(),
                });
            }
            self.trace_event(SpanKind::BudgetReserve, requested as u64);
            self.accounted_bytes += requested;
        }
        let node = Node {
            kind,
            parent,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
            roles: RoleSet::new(),
            subtree_roles: 0,
            subtree_pins: 0,
            pins: 0,
            own_agg: 0,
            finished: false,
            marked: false,
            alive: true,
        };
        let (id, bytes) = if let Some(slot) = self.free.pop() {
            // Recycle the slot's role-set allocation: most buffered nodes
            // carry roles, and replacing the whole node would drop the
            // `RoleSet`'s vector just to reallocate it on the first
            // `add_role` — a per-node allocation on the hot path. The
            // node's byte charge is sampled *after* the swap so the
            // recycled capacity is charged at birth — `delete_subtree`
            // frees `bytes()` including that capacity, and `add_role`
            // will not re-charge it (no growth happens).
            let mut node = node;
            let mut roles = std::mem::take(&mut self.nodes[slot as usize].roles);
            roles.clear();
            node.roles = roles;
            let bytes = node.bytes();
            self.nodes[slot as usize] = node;
            (BufNodeId(slot), bytes)
        } else {
            let bytes = node.bytes();
            self.nodes.push(node);
            (BufNodeId(self.nodes.len() as u32 - 1), bytes)
        };
        let prev_peak = self.stats.peak_bytes;
        self.stats.alloc(bytes);
        if self.flight.is_some() {
            self.trace_event(SpanKind::NodeBuffered, bytes as u64);
            let peak = self.stats.peak_bytes;
            if peak / HIGH_WATER_STEP != prev_peak / HIGH_WATER_STEP {
                self.trace_event(SpanKind::HighWater, peak as u64);
            }
        }
        self.publish_live();
        Ok(id)
    }

    #[inline]
    fn n(&self, id: BufNodeId) -> &Node {
        let node = &self.nodes[id.index()];
        debug_assert!(node.alive, "access to dead node {}", id.0);
        node
    }

    #[inline]
    fn n_mut(&mut self, id: BufNodeId) -> &mut Node {
        let node = &mut self.nodes[id.index()];
        debug_assert!(node.alive, "access to dead node {}", id.0);
        node
    }

    // ------------------------------------------------------------------
    // Construction (used by the stream preprojector)
    // ------------------------------------------------------------------

    /// Appends a new element under `parent`; the node starts "unfinished".
    ///
    /// # Errors
    /// [`BufferError::BudgetExceeded`] when an installed accounting hook
    /// refuses the reservation (nothing is allocated in that case).
    pub fn open_element(
        &mut self,
        parent: BufNodeId,
        tag: TagId,
    ) -> Result<BufNodeId, BufferError> {
        let id = self.alloc(BufKind::Element(tag), Some(parent))?;
        self.link_last(parent, id);
        Ok(id)
    }

    /// Appends a text node under `parent`; text nodes are born finished.
    /// The content is copied into the buffer's text arena — no per-node
    /// allocation.
    ///
    /// # Errors
    /// [`BufferError::BudgetExceeded`] when an installed accounting hook
    /// refuses the reservation (the arena is rolled back in that case).
    pub fn add_text(&mut self, parent: BufNodeId, text: &str) -> Result<BufNodeId, BufferError> {
        let span = TextSpan {
            // Empty text pins offset 0 so its span stays valid across
            // wholesale arena resets (it references no bytes).
            offset: if text.is_empty() {
                0
            } else {
                u32::try_from(self.text.len()).expect("text arena within u32 range")
            },
            len: u32::try_from(text.len()).expect("text node within u32 range"),
        };
        self.text.extend_from_slice(text.as_bytes());
        self.live_text_bytes += text.len();
        let id = match self.alloc(BufKind::Text(span), Some(parent)) {
            Ok(id) => id,
            Err(e) => {
                // Undo the speculative arena append (empty text appended
                // nothing; its offset-0 span must not wipe the arena).
                if !text.is_empty() {
                    self.text.truncate(span.offset as usize);
                    self.live_text_bytes -= text.len();
                }
                return Err(e);
            }
        };
        self.n_mut(id).finished = true;
        self.link_last(parent, id);
        Ok(id)
    }

    /// Resolves a span against the text arena.
    #[inline]
    pub(crate) fn span_str(&self, sp: TextSpan) -> &str {
        if sp.len == 0 {
            return "";
        }
        std::str::from_utf8(&self.text[sp.range()]).expect("arena holds validated UTF-8")
    }

    fn link_last(&mut self, parent: BufNodeId, id: BufNodeId) {
        let prev = self.n(parent).last_child;
        self.n_mut(id).prev_sibling = prev;
        if let Some(p) = prev {
            self.n_mut(p).next_sibling = Some(id);
        } else {
            self.n_mut(parent).first_child = Some(id);
        }
        self.n_mut(parent).last_child = Some(id);
    }

    /// Marks an element finished (its closing tag has been read) and runs
    /// the close-time purge: a marked or irrelevant node is deleted now.
    /// Returns `true` when the node was purged.
    pub fn finish(&mut self, id: BufNodeId) -> bool {
        self.n_mut(id).finished = true;
        if id == Self::ROOT {
            return false;
        }
        if self.n(id).marked || self.irrelevant(id) {
            self.gc_from(id);
            return !self.nodes[id.index()].alive;
        }
        false
    }

    // ------------------------------------------------------------------
    // Role management
    // ------------------------------------------------------------------

    /// `addρ(r, n)`: assigns one instance of `role` to `id`.
    pub fn add_role(&mut self, id: BufNodeId, role: Role) {
        let before = self.n(id).roles.approx_bytes();
        self.n_mut(id).roles.add(role);
        if self.is_aggregate[role.index()] {
            self.n_mut(id).own_agg += 1;
        }
        let after = self.n(id).roles.approx_bytes();
        if after > before {
            self.stats.grow(after - before);
            self.publish_live();
        }
        self.assigned[role.index()] += 1;
        self.stats.roles_assigned += 1;
        self.bump_subtree_roles(id, 1);
    }

    fn bump_subtree_roles(&mut self, id: BufNodeId, delta: i32) {
        let mut at = Some(id);
        while let Some(x) = at {
            let node = self.n_mut(x);
            node.subtree_roles = (node.subtree_roles as i64 + delta as i64) as u32;
            if delta > 0 && node.marked {
                // Resurrection: an unfinished node marked for deletion
                // whose subtree becomes relevant again (a role-carrying
                // descendant arrived from the stream) must be navigable
                // once more, and its closing tag must no longer purge it.
                // This happens when redundant-role elimination leaves
                // variable-matched nodes roleless and an early child
                // closes before the relevant part of the subtree arrives.
                node.marked = false;
            }
            at = node.parent;
        }
    }

    fn bump_subtree_pins(&mut self, id: BufNodeId, delta: i32) {
        let mut at = Some(id);
        while let Some(x) = at {
            let node = self.n_mut(x);
            node.subtree_pins = (node.subtree_pins as i64 + delta as i64) as u32;
            at = node.parent;
        }
    }

    /// The signOff primitive (paper Fig. 10, inner loop body): removes
    /// `count` instances of `role` from `id`, then runs the localized
    /// garbage collection from `id` upward.
    pub fn sign_off(&mut self, id: BufNodeId, role: Role, count: u32) -> Result<(), BufferError> {
        if count == 0 {
            return Ok(());
        }
        self.stats.signoffs += 1;
        self.trace_event(SpanKind::SignOff, u64::from(count));
        let had = self.n(id).roles.count(role);
        let removed = self.n_mut(id).roles.remove_n(role, count);
        if removed != count {
            return Err(BufferError::UndefinedRoleRemoval {
                node: id.0,
                role,
                wanted: count,
                had,
            });
        }
        self.removed[role.index()] += u64::from(count);
        self.stats.roles_removed += u64::from(count);
        self.bump_subtree_roles(id, -(count as i32));
        let was_aggregate = self.is_aggregate[role.index()];
        if was_aggregate {
            self.n_mut(id).own_agg -= count;
        }
        // Aggregate semantics: when the last covering aggregate disappears,
        // roleless descendants must be purged now — exactly when their
        // per-node instances would have been removed in the non-aggregated
        // scheme.
        if was_aggregate && self.n(id).own_agg == 0 && !self.has_agg_ancestor(id) {
            self.prune_roleless(id);
        }
        self.gc_from(id);
        Ok(())
    }

    fn has_agg_ancestor(&self, id: BufNodeId) -> bool {
        let mut at = self.n(id).parent;
        while let Some(x) = at {
            let node = self.n(x);
            if node.own_agg > 0 {
                return true;
            }
            at = node.parent;
        }
        false
    }

    /// Deletes every role-free, pin-free subtree below `id` (aggregate
    /// uncovering sweep). Subtrees whose root carries its own aggregate
    /// role are still covered and skipped entirely.
    fn prune_roleless(&mut self, id: BufNodeId) {
        let mut child = self.n(id).first_child;
        while let Some(c) = child {
            let next = self.n(c).next_sibling;
            let node = self.n(c);
            if node.own_agg > 0 {
                // Covered by a deeper aggregate role; nothing to prune here.
            } else if node.subtree_roles == 0 && node.subtree_pins == 0 {
                if node.finished {
                    self.delete_subtree(c);
                } else {
                    self.n_mut(c).marked = true;
                    self.prune_roleless(c);
                }
            } else {
                self.prune_roleless(c);
            }
            child = next;
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection (paper Fig. 10)
    // ------------------------------------------------------------------

    /// A node is *irrelevant* when neither it nor any descendant carries a
    /// role (and, in our implementation, no pins either and no covering
    /// aggregate ancestor).
    pub fn irrelevant(&self, id: BufNodeId) -> bool {
        let node = self.n(id);
        node.subtree_roles == 0 && node.subtree_pins == 0 && !self.has_agg_ancestor(id)
    }

    /// The localized bottom-up search of Fig. 10: starting at `id`, delete
    /// irrelevant finished nodes, propagating upward until the first
    /// relevant (or unfinished, or pinned) node.
    fn gc_from(&mut self, id: BufNodeId) {
        let mut at = id;
        loop {
            self.stats.gc_visits += 1;
            if at == Self::ROOT {
                break;
            }
            let node = self.n(at);
            if node.subtree_roles != 0 || node.subtree_pins != 0 {
                break; // relevant — local search stops
            }
            if self.has_agg_ancestor(at) {
                break; // covered by an aggregate subtree
            }
            let parent = node.parent.expect("non-root has a parent");
            if node.finished {
                self.delete_subtree(at);
            } else {
                self.n_mut(at).marked = true;
                break;
            }
            at = parent;
        }
    }

    /// Unlinks and frees an entire subtree. The caller guarantees the
    /// subtree is role- and pin-free and its root is finished (all
    /// descendants of a finished node are finished).
    fn delete_subtree(&mut self, id: BufNodeId) {
        debug_assert_eq!(self.n(id).subtree_roles, 0);
        debug_assert_eq!(self.n(id).subtree_pins, 0);
        self.unlink(id);
        // Iterative post-order free; the traversal stack is pooled on the
        // tree (one purge runs per garbage-collected subtree — hot).
        let mut stack = std::mem::take(&mut self.sweep);
        stack.clear();
        stack.push(id);
        let mut released = 0usize;
        while let Some(x) = stack.pop() {
            let mut child = self.nodes[x.index()].first_child;
            while let Some(c) = child {
                stack.push(c);
                child = self.nodes[c.index()].next_sibling;
            }
            let bytes = self.nodes[x.index()].bytes();
            released += Self::charge_for(&self.nodes[x.index()].kind);
            if let BufKind::Text(sp) = self.nodes[x.index()].kind {
                self.live_text_bytes -= sp.len as usize;
                // Tail spans are reclaimed in place; anything else waits
                // for the wholesale reset below.
                if sp.range().end == self.text.len() {
                    self.text.truncate(sp.offset as usize);
                }
            }
            self.nodes[x.index()].alive = false;
            self.free.push(x.0);
            self.stats.free(bytes);
        }
        self.sweep = stack;
        if self.live_text_bytes == 0 {
            // No live text node references the arena: reclaim it
            // wholesale (capacity is kept for reuse).
            self.text.clear();
        }
        if let Some(acc) = &self.accounting {
            acc.release(released);
            self.accounted_bytes -= released;
        }
        self.trace_event(SpanKind::SubtreeDelete, released as u64);
        self.publish_live();
    }

    fn unlink(&mut self, id: BufNodeId) {
        let (parent, prev, next) = {
            let n = self.n(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if let Some(p) = prev {
            self.n_mut(p).next_sibling = next;
        } else if let Some(par) = parent {
            self.n_mut(par).first_child = next;
        }
        if let Some(nx) = next {
            self.n_mut(nx).prev_sibling = prev;
        } else if let Some(par) = parent {
            self.n_mut(par).last_child = prev;
        }
    }

    // ------------------------------------------------------------------
    // Pins (evaluator cursors)
    // ------------------------------------------------------------------

    /// Pins `id`: it and its ancestors stay navigable until unpinned.
    pub fn pin(&mut self, id: BufNodeId) {
        self.n_mut(id).pins += 1;
        self.bump_subtree_pins(id, 1);
    }

    /// Releases a pin; if the node became irrelevant while pinned, the
    /// deferred purge runs now.
    pub fn unpin(&mut self, id: BufNodeId) {
        debug_assert!(self.n(id).pins > 0, "unbalanced unpin");
        self.n_mut(id).pins -= 1;
        self.bump_subtree_pins(id, -1);
        if id != Self::ROOT && (self.n(id).marked || self.irrelevant(id)) && self.n(id).finished {
            self.gc_from(id);
        } else if self.n(id).marked {
            // Unfinished & marked: stays until its closing tag arrives.
        }
    }

    // ------------------------------------------------------------------
    // Navigation (used by the evaluator)
    // ------------------------------------------------------------------

    /// True when the slot is alive (not purged).
    pub fn is_alive(&self, id: BufNodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Node payload.
    pub fn kind(&self, id: BufNodeId) -> &BufKind {
        &self.n(id).kind
    }

    /// Element tag, `None` for text/root.
    pub fn tag(&self, id: BufNodeId) -> Option<TagId> {
        match self.n(id).kind {
            BufKind::Element(t) => Some(t),
            _ => None,
        }
    }

    /// True for text nodes.
    pub fn is_text(&self, id: BufNodeId) -> bool {
        matches!(self.n(id).kind, BufKind::Text(_))
    }

    /// Text content of a text node (resolved against the text arena).
    pub fn text_content(&self, id: BufNodeId) -> Option<&str> {
        match self.n(id).kind {
            BufKind::Text(sp) => Some(self.span_str(sp)),
            _ => None,
        }
    }

    /// Bytes currently held by the text arena (diagnostics/tests).
    pub fn text_arena_len(&self) -> usize {
        self.text.len()
    }

    pub fn parent(&self, id: BufNodeId) -> Option<BufNodeId> {
        self.n(id).parent
    }

    /// First child that is not semantically deleted (marked).
    pub fn first_child(&self, id: BufNodeId) -> Option<BufNodeId> {
        let mut c = self.n(id).first_child;
        while let Some(x) = c {
            if !self.n(x).marked {
                return Some(x);
            }
            c = self.n(x).next_sibling;
        }
        None
    }

    /// Next sibling that is not semantically deleted (marked).
    pub fn next_sibling(&self, id: BufNodeId) -> Option<BufNodeId> {
        let mut c = self.n(id).next_sibling;
        while let Some(x) = c {
            if !self.n(x).marked {
                return Some(x);
            }
            c = self.n(x).next_sibling;
        }
        None
    }

    /// Raw next sibling including marked nodes (cursor recovery).
    pub fn next_sibling_raw(&self, id: BufNodeId) -> Option<BufNodeId> {
        self.n(id).next_sibling
    }

    /// Whether the closing tag of `id` has been read.
    pub fn is_finished(&self, id: BufNodeId) -> bool {
        self.n(id).finished
    }

    /// Whether `id` is marked (semantically deleted, awaiting purge).
    pub fn is_marked(&self, id: BufNodeId) -> bool {
        self.n(id).marked
    }

    /// Multiplicity of `role` on `id`.
    pub fn role_count(&self, id: BufNodeId, role: Role) -> u32 {
        self.n(id).roles.count(role)
    }

    /// The full role-set of `id` (for traces, Fig. 2 style).
    pub fn roles(&self, id: BufNodeId) -> &RoleSet {
        &self.n(id).roles
    }

    /// Document-order successor within the subtree rooted at `scope`
    /// (excluding `scope` itself on entry: pass `current = scope` to get
    /// the first node). Skips marked nodes' subtrees entirely? No — marked
    /// nodes are skipped as *results* but their (live) descendants cannot
    /// carry roles, so skipping the whole subtree is sound and faster.
    pub fn next_in_subtree(&self, scope: BufNodeId, current: BufNodeId) -> Option<BufNodeId> {
        // Try first child (unless current is marked — then its subtree is
        // semantically gone).
        if !self.n(current).marked {
            if let Some(c) = self.first_child(current) {
                return Some(c);
            }
        }
        let mut at = current;
        loop {
            if at == scope {
                return None;
            }
            if let Some(s) = self.next_sibling(at) {
                return Some(s);
            }
            at = self.n(at).parent?;
        }
    }

    /// Number of live children (diagnostics/tests).
    pub fn child_count(&self, id: BufNodeId) -> usize {
        let mut n = 0;
        let mut c = self.first_child(id);
        while let Some(x) = c {
            n += 1;
            c = self.next_sibling(x);
        }
        n
    }

    /// Renders the live buffer like the paper's Fig. 2 "buffer" column,
    /// e.g. `bib{r2} book{r3,r5,r6} title{r5,r7}`.
    pub fn render(&self, tags: &gcx_xml::TagInterner) -> String {
        let mut out = String::new();
        self.render_rec(Self::ROOT, tags, &mut out);
        out.trim_end().to_string()
    }

    /// Debug rendering including marked nodes, pins and subtree counters.
    pub fn render_debug(&self, tags: &gcx_xml::TagInterner) -> String {
        let mut out = String::new();
        self.render_debug_rec(Self::ROOT, tags, &mut out, 0);
        out
    }

    fn render_debug_rec(
        &self,
        id: BufNodeId,
        tags: &gcx_xml::TagInterner,
        out: &mut String,
        depth: usize,
    ) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        let n = self.n(id);
        let label = match n.kind {
            BufKind::Root => "/".to_string(),
            BufKind::Element(t) => tags.name(t).to_string(),
            BufKind::Text(sp) => format!("{:?}", self.span_str(sp)),
        };
        let _ = writeln!(
            out,
            "#{} {} {} sr={} sp={} pins={} agg={} fin={} marked={}",
            id.0,
            label,
            n.roles,
            n.subtree_roles,
            n.subtree_pins,
            n.pins,
            n.own_agg,
            n.finished,
            n.marked
        );
        let mut c = n.first_child;
        while let Some(x) = c {
            self.render_debug_rec(x, tags, out, depth + 1);
            c = self.n(x).next_sibling;
        }
    }

    fn render_rec(&self, id: BufNodeId, tags: &gcx_xml::TagInterner, out: &mut String) {
        use std::fmt::Write as _;
        if id != Self::ROOT && !self.n(id).marked {
            match self.n(id).kind {
                BufKind::Element(t) => {
                    let _ = write!(out, "{}{} ", tags.name(t), self.n(id).roles);
                }
                BufKind::Text(sp) => {
                    let _ = write!(out, "\"{}\"{} ", self.span_str(sp), self.n(id).roles);
                }
                BufKind::Root => {}
            }
        }
        let mut c = self.n(id).first_child;
        while let Some(x) = c {
            if !self.n(x).marked {
                self.render_rec(x, tags, out);
            }
            c = self.n(x).next_sibling;
        }
    }
}

impl Drop for BufferTree {
    fn drop(&mut self) {
        // Nodes still alive at teardown (root, mid-stream aborts) hold
        // reservations; hand every accounted byte back to the budget.
        if let Some(acc) = &self.accounting {
            acc.release(self.accounted_bytes);
            self.accounted_bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(roles: usize) -> BufferTree {
        BufferTree::new(roles, &[])
    }

    #[test]
    fn build_and_navigate() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let bib = tags.intern("bib");
        let book = tags.intern("book");
        let e1 = b.open_element(BufferTree::ROOT, bib).unwrap();
        let e2 = b.open_element(e1, book).unwrap();
        let t = b.add_text(e2, "hello").unwrap();
        assert_eq!(b.parent(e2), Some(e1));
        assert_eq!(b.first_child(e1), Some(e2));
        assert_eq!(b.first_child(e2), Some(t));
        assert_eq!(b.text_content(t), Some("hello"));
        assert_eq!(b.tag(e1), Some(bib));
        assert!(!b.is_finished(e2));
        b.finish(e2);
        // e2 carries no roles: it is purged at close time.
        assert!(!b.is_alive(e2));
    }

    #[test]
    fn roles_keep_nodes_alive() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n, Role(1));
        b.finish(n);
        assert!(b.is_alive(n));
        b.sign_off(n, Role(1), 1).unwrap();
        assert!(!b.is_alive(n), "losing the last role purges the node");
        assert!(b.all_roles_returned());
    }

    #[test]
    fn descendant_roles_protect_ancestors() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let y = tags.intern("y");
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        let n2 = b.open_element(n1, y).unwrap();
        b.add_role(n2, Role(0));
        b.finish(n2);
        b.finish(n1);
        assert!(b.is_alive(n1), "ancestor of a role-carrying node stays");
        b.sign_off(n2, Role(0), 1).unwrap();
        assert!(!b.is_alive(n2));
        assert!(!b.is_alive(n1), "purge propagates bottom-up (Fig. 10)");
    }

    #[test]
    fn unfinished_nodes_are_marked_not_deleted() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n, Role(1));
        b.sign_off(n, Role(1), 1).unwrap();
        assert!(b.is_alive(n), "unfinished node survives as marked");
        assert!(b.is_marked(n));
        b.finish(n);
        assert!(!b.is_alive(n), "purged once the closing tag arrives");
    }

    #[test]
    fn undefined_removal_is_reported() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n, Role(1));
        let err = b.sign_off(n, Role(2), 1).unwrap_err();
        assert!(matches!(err, BufferError::UndefinedRoleRemoval { .. }));
    }

    #[test]
    fn multiplicity_requires_matching_removals() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n, Role(3));
        b.add_role(n, Role(3));
        b.finish(n);
        b.sign_off(n, Role(3), 1).unwrap();
        assert!(b.is_alive(n), "one instance left");
        b.sign_off(n, Role(3), 1).unwrap();
        assert!(!b.is_alive(n));
        assert!(b.all_roles_returned());
    }

    #[test]
    fn pins_defer_purging() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n, Role(0));
        b.finish(n);
        b.pin(n);
        b.sign_off(n, Role(0), 1).unwrap();
        assert!(b.is_alive(n), "pinned node survives");
        b.unpin(n);
        assert!(!b.is_alive(n), "purged on unpin");
    }

    #[test]
    fn pin_protects_ancestor_chain() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        let n2 = b.open_element(n1, x).unwrap();
        b.add_role(n2, Role(0));
        b.finish(n2);
        b.finish(n1);
        b.pin(n2);
        b.sign_off(n2, Role(0), 1).unwrap();
        assert!(b.is_alive(n1), "ancestors of pinned nodes survive");
        b.unpin(n2);
        assert!(!b.is_alive(n2));
        assert!(!b.is_alive(n1));
    }

    #[test]
    fn sibling_navigation_skips_marked() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let p = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(p, Role(1));
        let a = b.open_element(p, x).unwrap();
        b.add_role(a, Role(0));
        let c = b.open_element(p, x).unwrap();
        b.add_role(c, Role(0));
        b.finish(a);
        b.finish(c);
        // Delete the first child; second remains reachable.
        b.sign_off(a, Role(0), 1).unwrap();
        assert_eq!(b.first_child(p), Some(c));
        assert_eq!(b.child_count(p), 1);
    }

    #[test]
    fn subtree_deletion_frees_descendants() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n1, Role(0));
        let n2 = b.open_element(n1, x).unwrap();
        let n3 = b.open_element(n2, x).unwrap();
        let t = b.add_text(n3, "abc").unwrap();
        b.finish(n3);
        b.finish(n2);
        b.finish(n1);
        // Descendants carry no roles but survive: the subtree root's role
        // protects nothing below — wait, irrelevance is per-subtree, so n2
        // is irrelevant... n2 was purged at finish time already.
        assert!(!b.is_alive(n2));
        assert!(!b.is_alive(n3));
        assert!(!b.is_alive(t));
        assert!(b.is_alive(n1));
        b.sign_off(n1, Role(0), 1).unwrap();
        assert!(!b.is_alive(n1));
        assert_eq!(b.stats().live_nodes, 1, "only the root remains");
    }

    #[test]
    fn dos_style_subtree_retained_until_signoff() {
        // Simulates a dos::node() projection: every node carries r5.
        let mut b = setup(8);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let r5 = Role(5);
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n1, r5);
        let n2 = b.open_element(n1, x).unwrap();
        b.add_role(n2, r5);
        let t = b.add_text(n2, "v").unwrap();
        b.add_role(t, r5);
        b.finish(n2);
        b.finish(n1);
        assert_eq!(b.stats().live_nodes, 4);
        // signOff in document order (as path evaluation would).
        b.sign_off(n1, r5, 1).unwrap();
        assert!(b.is_alive(n1), "descendants still carry roles");
        b.sign_off(n2, r5, 1).unwrap();
        b.sign_off(t, r5, 1).unwrap();
        assert_eq!(b.stats().live_nodes, 1);
        assert!(b.all_roles_returned());
    }

    #[test]
    fn aggregate_role_covers_subtree() {
        let mut b = BufferTree::new(8, &[Role(5)]);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n1, Role(5)); // aggregate
        let n2 = b.open_element(n1, x).unwrap();
        let t = b.add_text(n2, "v").unwrap();
        b.finish(n2);
        assert!(
            b.is_alive(n2),
            "roleless node under an aggregate subtree survives its close"
        );
        b.finish(n1);
        assert!(b.is_alive(n1));
        b.sign_off(n1, Role(5), 1).unwrap();
        assert!(!b.is_alive(n1));
        assert!(!b.is_alive(n2));
        assert!(!b.is_alive(t));
        assert_eq!(b.stats().live_nodes, 1);
    }

    #[test]
    fn aggregate_uncover_prunes_but_keeps_roled_descendants() {
        let mut b = BufferTree::new(8, &[Role(5)]);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(n1, Role(5)); // aggregate on subtree root
        let keep = b.open_element(n1, x).unwrap();
        b.add_role(keep, Role(1)); // plain role deeper down
        let junk = b.open_element(keep, x).unwrap();
        let junk2 = b.open_element(n1, x).unwrap();
        b.finish(junk);
        b.finish(keep);
        b.finish(junk2);
        b.finish(n1);
        assert!(b.is_alive(junk) && b.is_alive(junk2));
        b.sign_off(n1, Role(5), 1).unwrap();
        assert!(b.is_alive(n1), "still protected by keep's role");
        assert!(b.is_alive(keep));
        assert!(!b.is_alive(junk), "pruned when aggregate cover vanished");
        assert!(!b.is_alive(junk2));
        b.sign_off(keep, Role(1), 1).unwrap();
        assert_eq!(b.stats().live_nodes, 1);
    }

    #[test]
    fn next_in_subtree_walks_document_order() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let root = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(root, Role(0));
        let a = b.open_element(root, x).unwrap();
        b.add_role(a, Role(0));
        let a1 = b.open_element(a, x).unwrap();
        b.add_role(a1, Role(0));
        let c = b.open_element(root, x).unwrap();
        b.add_role(c, Role(0));
        let order = {
            let mut v = Vec::new();
            let mut cur = root;
            while let Some(n) = b.next_in_subtree(root, cur) {
                v.push(n);
                cur = n;
            }
            v
        };
        assert_eq!(order, vec![a, a1, c]);
    }

    #[test]
    fn render_matches_fig2_style() {
        let mut b = setup(8);
        let mut tags = gcx_xml::TagInterner::new();
        let bib = tags.intern("bib");
        let book = tags.intern("book");
        let n1 = b.open_element(BufferTree::ROOT, bib).unwrap();
        b.add_role(n1, Role(2));
        let n2 = b.open_element(n1, book).unwrap();
        b.add_role(n2, Role(3));
        b.add_role(n2, Role(5));
        b.add_role(n2, Role(6));
        assert_eq!(b.render(&tags), "bib{r2} book{r3,r5,r6}");
    }

    #[test]
    fn stats_watermark() {
        let mut b = setup(2);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        for _ in 0..10 {
            let n = b.open_element(BufferTree::ROOT, x).unwrap();
            b.add_role(n, Role(0));
            b.finish(n);
            b.sign_off(n, Role(0), 1).unwrap();
        }
        let s = b.stats();
        assert_eq!(s.live_nodes, 1);
        assert!(s.peak_nodes <= 3, "peak stays tiny: {}", s.peak_nodes);
        assert_eq!(s.nodes_created, 11);
        assert_eq!(s.nodes_purged, 10);
        assert_eq!(s.roles_assigned, 10);
        assert_eq!(s.roles_removed, 10);
    }

    #[test]
    fn text_arena_reclaimed_by_gc() {
        let mut b = setup(2);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        // Streaming churn: buffer a text-carrying element, GC it away,
        // repeat. The arena must not grow without bound.
        for round in 0..50 {
            let n = b.open_element(BufferTree::ROOT, x).unwrap();
            b.add_role(n, Role(0));
            let t = b.add_text(n, "some text payload").unwrap();
            b.add_role(t, Role(1));
            b.finish(n);
            b.sign_off(t, Role(1), 1).unwrap();
            b.sign_off(n, Role(0), 1).unwrap();
            assert_eq!(
                b.text_arena_len(),
                0,
                "arena reclaimed after GC round {round}"
            );
        }
    }

    #[test]
    fn empty_text_survives_arena_reset() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let gone = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(gone, Role(0));
        let t = b.add_text(gone, "payload").unwrap();
        b.add_role(t, Role(0));
        let keep = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(keep, Role(1));
        let empty = b.add_text(keep, "").unwrap();
        b.add_role(empty, Role(1));
        b.finish(gone);
        // Purge the only non-empty text: live_text_bytes hits 0 and the
        // arena resets while the empty text node is still alive.
        b.sign_off(t, Role(0), 1).unwrap();
        b.sign_off(gone, Role(0), 1).unwrap();
        assert_eq!(b.text_arena_len(), 0);
        assert!(b.is_alive(empty));
        assert_eq!(b.text_content(empty), Some(""));
        assert_eq!(b.string_value(keep), "");
    }

    #[test]
    fn text_arena_tail_truncation() {
        let mut b = setup(4);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let keep = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(keep, Role(0));
        let t1 = b.add_text(keep, "kept").unwrap();
        b.add_role(t1, Role(0));
        let gone = b.open_element(BufferTree::ROOT, x).unwrap();
        b.add_role(gone, Role(1));
        let t2 = b.add_text(gone, "tail-reclaimed").unwrap();
        b.add_role(t2, Role(1));
        b.finish(gone);
        assert_eq!(b.text_arena_len(), 4 + 14);
        // Purging the tail text truncates the arena in place.
        b.sign_off(t2, Role(1), 1).unwrap();
        b.sign_off(gone, Role(1), 1).unwrap();
        assert_eq!(b.text_arena_len(), 4);
        assert_eq!(b.text_content(t1), Some("kept"));
    }

    #[test]
    fn slot_reuse_after_purge() {
        let mut b = setup(2);
        let mut tags = gcx_xml::TagInterner::new();
        let x = tags.intern("x");
        let n1 = b.open_element(BufferTree::ROOT, x).unwrap();
        b.finish(n1); // purged immediately (no roles)
        let n2 = b.open_element(BufferTree::ROOT, x).unwrap();
        assert_eq!(n1, n2, "arena slot is recycled");
    }
}
