//! Differential test: the dense-table [`LazyDfa`] transition memo must
//! behave exactly like a retained `HashMap<(state, tag), state>` oracle.
//!
//! The dense per-state rows replaced the original hash-map memo; this
//! test drives the DFA over the XMark corpus while mirroring every
//! transition into a hash map on the side. Any divergence — a memoized
//! transition changing its answer, or a rebuild producing a different
//! state — fails the run.

use gcx::projection::dfa::LazyDfa;
use gcx::projection::ProjTree;
use gcx::query::{compile, CompileOptions};
use gcx::xmark::XmarkConfig;
use gcx::xml::{TagInterner, XmlLexer, XmlToken};
use std::collections::HashMap;

fn xmark_doc(mb: f64, seed: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    gcx::xmark::generate(XmarkConfig { seed, scale: mb }, &mut buf).expect("generation");
    buf
}

/// Streams `doc` through a fresh DFA for `tree`, checking every
/// transition against the oracle and against an immediate re-query.
fn drive_and_check(tree: &ProjTree, tags: &mut TagInterner, doc: &[u8]) -> (usize, usize) {
    let mut dfa = LazyDfa::new(tree, &[(ProjTree::ROOT, false)]);
    let mut oracle: HashMap<(u32, u32), u32> = HashMap::new();
    let mut stack = vec![LazyDfa::INITIAL];
    let mut lexer = XmlLexer::new(doc, tags);
    let mut transitions = 0usize;
    while let Some(tok) = lexer.next_token().expect("lex") {
        match tok {
            XmlToken::Open(tag) => {
                let from = *stack.last().expect("stack nonempty");
                let to = dfa.transition(tree, from, tag);
                transitions += 1;
                match oracle.entry((from, tag.0)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(
                            *e.get(),
                            to,
                            "dense table diverged from the HashMap oracle at ({from}, {tag})"
                        );
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(to);
                    }
                }
                // Memoization is stable: asking again returns the same
                // state and constructs nothing new.
                let states_before = dfa.len();
                assert_eq!(dfa.transition(tree, from, tag), to);
                assert_eq!(dfa.len(), states_before, "re-query grew the DFA");
                // The text verdict for the target state is stable too.
                let (buffered, roles_len) = {
                    let (b, r) = dfa.text_outcome(tree, to);
                    (b, r.len())
                };
                let (b2, r2) = dfa.text_outcome(tree, to);
                assert_eq!((buffered, roles_len), (b2, r2.len()));
                stack.push(to);
            }
            XmlToken::Close(_) => {
                stack.pop();
            }
            XmlToken::Text(_) => {}
        }
    }
    assert_eq!(stack.len(), 1, "balanced stream");
    (transitions, oracle.len())
}

/// Every non-positional XMark query's projection DFA matches the oracle
/// over a generated corpus.
#[test]
fn dense_tables_match_hashmap_oracle_over_xmark() {
    let doc = xmark_doc(0.3, 1234);
    let mut checked = 0;
    for (name, query) in gcx::xmark::ALL {
        let mut tags = TagInterner::new();
        let compiled = compile(query, &mut tags, CompileOptions::default()).expect("compile");
        let tree = &compiled.projection.tree;
        if tree.has_positional() {
            // Positional predicates route to the NFA matcher; no DFA to
            // compare.
            continue;
        }
        let (transitions, distinct) = drive_and_check(tree, &mut tags, &doc);
        assert!(
            transitions > 1000,
            "{name}: corpus too small ({transitions} transitions)"
        );
        assert!(
            distinct < transitions / 10,
            "{name}: memoization ineffective ({distinct} distinct of {transitions})"
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected at least two DFA-mode XMark queries");
}

/// The dense rows also agree with the oracle across *interleaved* use of
/// several projections sharing one tag space (fresh tags appearing late
/// grow rows lazily).
#[test]
fn late_tags_grow_rows_correctly() {
    let mut tags = TagInterner::new();
    let compiled = compile(
        "<r>{ for $x in /site//item return $x/name }</r>",
        &mut tags,
        CompileOptions::default(),
    )
    .expect("compile");
    let tree = &compiled.projection.tree;
    assert!(!tree.has_positional());
    // Late-interned tags get high TagIds; transitions on them must still
    // memoize correctly after the small-id tags built short rows.
    let mut doc = String::from("<site>");
    for i in 0..50 {
        doc.push_str(&format!("<extra{i}><item><name>n</name></item></extra{i}>"));
    }
    doc.push_str("</site>");
    let (transitions, _) = drive_and_check(tree, &mut tags, doc.as_bytes());
    assert_eq!(transitions, 50 * 3 + 1);
}
