//! Differential and property tests for the zero-copy/interned lexer.
//!
//! The interned lexer replaced per-name `String` allocation with borrowed
//! byte-slice interning and batched text scanning; these tests pin down
//! that the observable token stream is *byte-identical* to the reference
//! behaviour regardless of how the input arrives:
//!
//! * whole-document, 1-byte and random chunkings produce the same stream;
//! * the borrowed-event API ([`XmlLexer::next_event`]) agrees with the
//!   owned-token API ([`XmlLexer::next_token`]);
//! * lex → write → lex is the identity.
//!
//! Documents are generated randomly with every construct the lexer
//! supports: nested elements, attributes, entities, CDATA, comments,
//! processing instructions and multi-byte UTF-8 text.

use gcx::xml::{LexerOptions, TagInterner, WhitespaceMode, XmlEvent, XmlLexer, XmlToken};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Read;

const TAGS: &[&str] = &[
    "site",
    "item",
    "name",
    "desc",
    "k-9",
    "x_y.z",
    "long-element-name",
];
const TEXTS: &[&str] = &[
    "plain",
    "wörds — ünïcode ✓",
    "a&amp;b &lt;x&gt; &#65;&#x42;",
    "  spaced  out  ",
    "1 &quot;2&quot; 3",
];

/// Renders a random document exercising every supported construct.
fn random_doc(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::new();
    if rng.random_bool(0.3) {
        s.push_str("<?xml version=\"1.0\"?>");
    }
    if rng.random_bool(0.2) {
        s.push_str("<!DOCTYPE site SYSTEM \"x.dtd\">");
    }
    s.push_str("<site>");
    build(&mut rng, &mut s, 3);
    s.push_str("</site>");
    s
}

fn build(rng: &mut StdRng, s: &mut String, depth: usize) {
    for _ in 0..rng.random_range(0..4) {
        match rng.random_range(0..6) {
            0 if depth > 0 => {
                let tag = TAGS[rng.random_range(0..TAGS.len())];
                s.push_str(&format!("<{tag}"));
                for _ in 0..rng.random_range(0..3) {
                    let attr = TAGS[rng.random_range(0..TAGS.len())];
                    let val = TEXTS[rng.random_range(0..TEXTS.len())]
                        .replace('"', "&quot;")
                        .replace('<', "&lt;");
                    s.push_str(&format!(" {attr}=\"{val}\""));
                }
                if rng.random_bool(0.2) {
                    s.push_str("/>");
                } else {
                    s.push('>');
                    build(rng, s, depth - 1);
                    s.push_str(&format!("</{tag}>"));
                }
            }
            1 => s.push_str(TEXTS[rng.random_range(0..TEXTS.len())]),
            2 => s.push_str("<![CDATA[1 < 2 && x]]>"),
            3 => s.push_str("<!-- a comment -->"),
            4 => s.push_str("<?pi target?>"),
            _ => {
                let tag = TAGS[rng.random_range(0..TAGS.len())];
                s.push_str(&format!("<{tag}/>"));
            }
        }
    }
}

/// Serves the input in chunks whose sizes are drawn from `sizes`,
/// cycling; simulates arbitrary network arrival (mid-tag, mid-entity,
/// mid-UTF-8 splits included).
struct ChunkedReader<'a> {
    data: &'a [u8],
    sizes: Vec<usize>,
    at: usize,
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.data.is_empty() {
            return Ok(0);
        }
        let want = self.sizes[self.at % self.sizes.len()].max(1);
        self.at += 1;
        let n = self.data.len().min(want).min(buf.len());
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

fn lex_with_chunks(doc: &str, sizes: Vec<usize>) -> Vec<String> {
    let mut tags = TagInterner::new();
    let opts = LexerOptions {
        whitespace: WhitespaceMode::Keep,
        ..Default::default()
    };
    let reader = ChunkedReader {
        data: doc.as_bytes(),
        sizes,
        at: 0,
    };
    let mut lexer = XmlLexer::with_options(reader, &mut tags, opts);
    let tokens = lexer.tokenize_all().expect("lex ok");
    tokens
        .iter()
        .map(|t| t.display(lexer.tags()).to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole-document, 1-byte and random chunkings yield byte-identical
    /// token streams.
    #[test]
    fn chunking_is_invisible(seed in 0u64..100_000, chunk_seed in 0u64..100_000) {
        let doc = random_doc(seed);
        let whole = lex_with_chunks(&doc, vec![usize::MAX]);
        prop_assert!(!whole.is_empty());
        let byte_at_a_time = lex_with_chunks(&doc, vec![1]);
        prop_assert_eq!(&whole, &byte_at_a_time, "1-byte chunking changed the stream");
        let mut rng = StdRng::seed_from_u64(chunk_seed);
        let sizes: Vec<usize> = (0..16).map(|_| rng.random_range(1..23)).collect();
        let random_chunks = lex_with_chunks(&doc, sizes.clone());
        prop_assert_eq!(&whole, &random_chunks, "random chunking {:?} changed the stream", sizes);
    }

    /// The borrowed-event API and the owned-token API describe the same
    /// stream.
    #[test]
    fn events_agree_with_tokens(seed in 0u64..100_000) {
        let doc = random_doc(seed);
        let opts = LexerOptions { whitespace: WhitespaceMode::Keep, ..Default::default() };

        let mut tags_a = TagInterner::new();
        let mut lexer_a = XmlLexer::with_options(doc.as_bytes(), &mut tags_a, opts);
        let tokens = lexer_a.tokenize_all().expect("lex ok");

        let mut tags_b = TagInterner::new();
        let mut lexer_b = XmlLexer::with_options(doc.as_bytes(), &mut tags_b, opts);
        let mut from_events: Vec<XmlToken> = Vec::new();
        while let Some(ev) = lexer_b.next_event().expect("lex ok") {
            let owned = match ev {
                XmlEvent::Open(t) => XmlToken::Open(t),
                XmlEvent::Close(t) => XmlToken::Close(t),
                XmlEvent::Text(s) => XmlToken::Text(s.to_string()),
            };
            from_events.push(owned);
        }
        prop_assert_eq!(tokens, from_events);
    }

    /// Lex → write → lex is the identity on token streams.
    #[test]
    fn writer_roundtrip(seed in 0u64..100_000) {
        let doc = random_doc(seed);
        let opts = LexerOptions { whitespace: WhitespaceMode::Keep, ..Default::default() };
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::with_options(doc.as_bytes(), &mut tags, opts);
        let tokens = lexer.tokenize_all().expect("lex ok");
        let rendered = gcx::xml::writer::tokens_to_string(&tokens, &tags);
        let mut lexer2 = XmlLexer::with_options(rendered.as_bytes(), &mut tags, opts);
        let tokens2 = lexer2.tokenize_all().expect("re-lex ok");
        prop_assert_eq!(tokens, tokens2);
    }
}

/// A tag name split across the lexer's internal 64 KiB refill boundary is
/// interned correctly (the slow path of `read_name_id`).
#[test]
fn name_split_across_refill_boundary() {
    // Padding text sized so the opening tag of <boundary-tag> straddles
    // the 64 KiB buffer edge.
    let pad_len = 64 * 1024 - 9 - 5; // "<site>" + pad + "<bound…" crosses
    let pad = "x".repeat(pad_len);
    let doc = format!("<site>{pad}<boundary-tag>v</boundary-tag></site>");
    let mut tags = TagInterner::new();
    let mut lexer = XmlLexer::new(doc.as_bytes(), &mut tags);
    let tokens = lexer.tokenize_all().expect("lex ok");
    let shown: Vec<String> = tokens
        .iter()
        .map(|t| t.display(lexer.tags()).to_string())
        .collect();
    assert!(shown.contains(&"<boundary-tag>".to_string()), "{shown:?}");
    assert!(shown.contains(&"</boundary-tag>".to_string()));
}
