//! The headline of paper Table 1, as an executable assertion: for the
//! streamable XMark queries, GCX's buffer high watermark is **independent
//! of the input size**, while the static-analysis-only engines grow
//! linearly and the DOM engine holds everything.

use gcx::xmark::{self, XmarkConfig};
use gcx::TagInterner;

fn doc(scale: f64) -> Vec<u8> {
    let mut buf = Vec::new();
    xmark::generate(XmarkConfig { seed: 7, scale }, &mut buf).unwrap();
    buf
}

fn gcx_peak(query: &str, data: &[u8]) -> (usize, usize) {
    let mut tags = TagInterner::new();
    let compiled = gcx::compile_default(query, &mut tags).unwrap();
    let mut sink = std::io::sink();
    let report = gcx::run_gcx(&compiled, &mut tags, data, &mut sink).unwrap();
    assert_eq!(report.safety, Some(true));
    (report.stats.peak_nodes, report.stats.peak_bytes)
}

fn nogc_peak(query: &str, data: &[u8]) -> usize {
    let mut tags = TagInterner::new();
    let compiled = gcx::compile_default(query, &mut tags).unwrap();
    let mut sink = std::io::sink();
    let report = gcx::run_no_gc_streaming(&compiled, &mut tags, data, &mut sink).unwrap();
    report.stats.peak_bytes
}

/// Paper: "For queries Q1, Q6, Q13 and Q20, memory consumption of our
/// prototype is independent of the input stream size."
///
/// GCX's watermark is bounded by the largest single buffered item (which
/// fluctuates with random content), not by the stream length — so the
/// robust check is that GCX's growth across a 5× input is a small
/// constant while the no-GC engine's tracks the input.
#[test]
fn constant_memory_for_streamable_queries() {
    let small = doc(0.05);
    let large = doc(0.25); // 5× the input
    for (name, query) in [
        ("Q1", xmark::Q1),
        ("Q6", xmark::Q6),
        ("Q13", xmark::Q13),
        ("Q20", xmark::Q20),
    ] {
        let (_, b_small) = gcx_peak(query, &small);
        let (_, b_large) = gcx_peak(query, &large);
        let gcx_growth = b_large as f64 / b_small as f64;
        let nogc_growth = nogc_peak(query, &large) as f64 / nogc_peak(query, &small) as f64;
        assert!(
            gcx_growth < 3.5,
            "{name}: GCX peak grew {gcx_growth:.1}x on 5x input ({b_small} -> {b_large})"
        );
        assert!(
            gcx_growth < nogc_growth * 0.75,
            "{name}: GCX growth {gcx_growth:.2}x not clearly below no-GC growth {nogc_growth:.2}x"
        );
    }
}

/// Static analysis alone keeps the projected document buffered: the no-GC
/// engine's footprint grows roughly linearly with the input.
#[test]
fn no_gc_memory_tracks_input_size() {
    let small = doc(0.05);
    let large = doc(0.25);
    let b_small = nogc_peak(xmark::Q1, &small);
    let b_large = nogc_peak(xmark::Q1, &large);
    assert!(
        b_large as f64 > b_small as f64 * 3.0,
        "no-GC peak should grow ~5x: {b_small} -> {b_large}"
    );
}

/// The memory hierarchy of Table 1: GCX ≤ no-GC ≈ static-projection ≤ DOM.
#[test]
fn table1_memory_ordering() {
    let data = doc(0.1);
    for (name, query) in xmark::ALL {
        let mut tags = TagInterner::new();
        let compiled = gcx::compile_default(query, &mut tags).unwrap();
        let mut s1 = std::io::sink();
        let g = gcx::run_gcx(&compiled, &mut tags, &data[..], &mut s1).unwrap();
        let mut tags2 = TagInterner::new();
        let c2 = gcx::compile_default(query, &mut tags2).unwrap();
        let mut s2 = std::io::sink();
        let n = gcx::run_no_gc_streaming(&c2, &mut tags2, &data[..], &mut s2).unwrap();
        let mut tags3 = TagInterner::new();
        let c3 = gcx::compile_default(query, &mut tags3).unwrap();
        let mut s3 = std::io::sink();
        let d = gcx::run_dom(&c3, &mut tags3, &data[..], &mut s3).unwrap();
        assert!(
            g.stats.peak_bytes <= n.stats.peak_bytes,
            "{name}: GCX {} ≤ no-GC {}",
            g.stats.peak_bytes,
            n.stats.peak_bytes
        );
        assert!(
            n.stats.peak_bytes <= d.stats.peak_bytes,
            "{name}: no-GC {} ≤ DOM {}",
            n.stats.peak_bytes,
            d.stats.peak_bytes
        );
    }
}

/// Evaluation time scales roughly linearly with input for the streamable
/// queries (sanity check, generous bounds against CI noise).
#[test]
fn linear_time_scaling() {
    let small = doc(0.1);
    let large = doc(0.4);
    let mut tags = TagInterner::new();
    let compiled = gcx::compile_default(xmark::Q1, &mut tags).unwrap();
    // Warm up + measure.
    let mut sink = std::io::sink();
    let _ = gcx::run_gcx(&compiled, &mut tags, &small[..], &mut sink).unwrap();
    let t_small = {
        let mut sink = std::io::sink();
        gcx::run_gcx(&compiled, &mut tags, &small[..], &mut sink)
            .unwrap()
            .elapsed
    };
    let t_large = {
        let mut sink = std::io::sink();
        gcx::run_gcx(&compiled, &mut tags, &large[..], &mut sink)
            .unwrap()
            .elapsed
    };
    // 4× the data should cost well under 40× the time.
    assert!(
        t_large < t_small * 40,
        "time exploded: {t_small:?} -> {t_large:?}"
    );
}
