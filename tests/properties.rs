//! Property-based tests (proptest): randomized documents and queries.
//!
//! * **Theorem 1**: GCX output equals the DOM oracle on every random
//!   (query, document) pair, under both compile-option sets.
//! * **Safety**: every GCX run returns all assigned role instances.
//! * **Lexer/writer roundtrip** on random documents.
//! * **Memory dominance**: GCX's peak never exceeds the no-GC engine's.

use gcx::query::{compile, CompileOptions};
use gcx::xml::{LexerOptions, TagInterner, WhitespaceMode, XmlLexer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// ----------------------------------------------------------------------
// Random documents
// ----------------------------------------------------------------------

include!("common/prop_gen.rs");

// ----------------------------------------------------------------------
// The properties
// ----------------------------------------------------------------------

fn differential_case(qseed: u64, dseed: u64, opts: CompileOptions) {
    let query = random_query(qseed);
    let doc = render_doc(dseed, 3, 3);
    let mut tags = TagInterner::new();
    let compiled = match compile(&query, &mut tags, opts) {
        Ok(c) => c,
        Err(e) => panic!("generated query failed to compile: {e}\n{query}"),
    };
    let mut dom_out = Vec::new();
    gcx::run_dom(&compiled, &mut tags, doc.as_bytes(), &mut dom_out)
        .unwrap_or_else(|e| panic!("dom failed: {e}\n{query}\n{doc}"));
    let mut gcx_out = Vec::new();
    let report = gcx::run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut gcx_out)
        .unwrap_or_else(|e| panic!("gcx failed: {e}\n{query}\n{doc}"));
    assert_eq!(
        String::from_utf8(dom_out).unwrap(),
        String::from_utf8(gcx_out).unwrap(),
        "Theorem 1 violated for\n{query}\nover\n{doc}"
    );
    assert_eq!(
        report.safety,
        Some(true),
        "role accounting violated for\n{query}\nover\n{doc}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn theorem1_random_queries_default_opts(qseed in 0u64..20_000, dseed in 0u64..20_000) {
        differential_case(qseed, dseed, CompileOptions::default());
    }

    #[test]
    fn theorem1_random_queries_plain_opts(qseed in 0u64..20_000, dseed in 0u64..20_000) {
        differential_case(qseed, dseed, CompileOptions::plain());
    }

    #[test]
    fn gcx_memory_never_exceeds_no_gc(qseed in 0u64..10_000, dseed in 0u64..10_000) {
        let query = random_query(qseed);
        let doc = render_doc(dseed, 3, 3);
        let mut tags = TagInterner::new();
        let compiled = compile(&query, &mut tags, CompileOptions::default()).unwrap();
        let mut o1 = Vec::new();
        let g = gcx::run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut o1).unwrap();
        let mut tags2 = TagInterner::new();
        let compiled2 = compile(&query, &mut tags2, CompileOptions::default()).unwrap();
        let mut o2 = Vec::new();
        let n = gcx::run_no_gc_streaming(&compiled2, &mut tags2, doc.as_bytes(), &mut o2).unwrap();
        prop_assert!(
            g.stats.peak_nodes <= n.stats.peak_nodes,
            "GCX peak {} > no-GC peak {} for\n{}\nover\n{}",
            g.stats.peak_nodes, n.stats.peak_nodes, query, doc
        );
        prop_assert_eq!(o1, o2);
    }

    #[test]
    fn lexer_writer_roundtrip(dseed in 0u64..50_000) {
        let doc = render_doc(dseed, 4, 4);
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            whitespace: WhitespaceMode::Keep,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options(doc.as_bytes(), &mut tags, opts);
        let tokens = lexer.tokenize_all().unwrap();
        let rendered = gcx::xml::writer::tokens_to_string(&tokens, &tags);
        let mut lexer2 = XmlLexer::with_options(rendered.as_bytes(), &mut tags, opts);
        let tokens2 = lexer2.tokenize_all().unwrap();
        prop_assert_eq!(tokens, tokens2);
    }

    #[test]
    fn parser_pretty_fixpoint_on_random_queries(qseed in 0u64..100_000) {
        let query = random_query(qseed);
        let mut tags = TagInterner::new();
        let q1 = gcx::query::parse(&query, &mut tags).expect("generated query parses");
        let printed = gcx::query::pretty_query(&q1, &tags);
        let mut tags2 = TagInterner::new();
        let q2 = gcx::query::parse(&printed, &mut tags2)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let printed2 = gcx::query::pretty_query(&q2, &tags2);
        prop_assert_eq!(printed, printed2, "pretty output is a fixpoint");
    }

    #[test]
    fn compile_is_deterministic(qseed in 0u64..50_000) {
        let query = random_query(qseed);
        let mut t1 = TagInterner::new();
        let c1 = compile(&query, &mut t1, CompileOptions::default()).unwrap();
        let mut t2 = TagInterner::new();
        let c2 = compile(&query, &mut t2, CompileOptions::default()).unwrap();
        prop_assert_eq!(
            gcx::query::pretty_query(&c1.rewritten, &t1),
            gcx::query::pretty_query(&c2.rewritten, &t2)
        );
        prop_assert_eq!(c1.projection.tree.len(), c2.projection.tree.len());
    }

    #[test]
    fn random_docs_parse_to_dom_and_back(dseed in 0u64..50_000) {
        let doc = render_doc(dseed, 3, 3);
        let mut tags = TagInterner::new();
        let parsed = gcx::xml::Document::parse_str(&doc, &mut tags).unwrap();
        let rendered = parsed.to_xml(&tags);
        let mut tags2 = TagInterner::new();
        let parsed2 = gcx::xml::Document::parse_str(&rendered, &mut tags2).unwrap();
        prop_assert_eq!(parsed.len(), parsed2.len());
    }
}
