//! End-to-end tests of the `gcx` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn gcx_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcx"))
}

#[test]
fn inline_query_over_stdin() {
    let mut child = gcx_bin()
        .args(["-q", "<r>{ for $b in /bib/book return $b/title }</r>"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gcx");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<bib><book><title>T</title></book></bib>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "<r><title>T</title></r>"
    );
}

#[test]
fn query_and_input_files_with_stats() {
    let dir = std::env::temp_dir().join(format!("gcx-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let qfile = dir.join("q.xq");
    let xfile = dir.join("in.xml");
    let ofile = dir.join("out.xml");
    std::fs::write(&qfile, "<r>{ for $x in //k return $x }</r>").unwrap();
    std::fs::write(&xfile, "<a><k>1</k><junk/><k>2</k></a>").unwrap();
    let out = gcx_bin()
        .args([
            qfile.to_str().unwrap(),
            xfile.to_str().unwrap(),
            "--stats",
            "-o",
            ofile.to_str().unwrap(),
        ])
        .output()
        .expect("run gcx");
    assert!(out.status.success());
    let result = std::fs::read_to_string(&ofile).unwrap();
    assert_eq!(result, "<r><k>1</k><k>2</k></r>");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("peak buffer"), "stats on stderr: {stderr}");
    assert!(stderr.contains("balanced"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_selection() {
    for engine in ["gcx", "nogc", "static", "dom"] {
        let mut child = gcx_bin()
            .args(["-q", "<r>{ for $b in /a/b return $b }</r>", "-e", engine])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(b"<a><b>x</b></a>")
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "engine {engine}");
        assert_eq!(String::from_utf8_lossy(&out.stdout), "<r><b>x</b></r>");
    }
}

#[test]
fn plan_and_compile_only() {
    let out = gcx_bin()
        .args([
            "-q",
            "<r>{ for $b in /a/b return $b/c }</r>",
            "--compile-only",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rewritten query"), "{stderr}");
    assert!(stderr.contains("signOff"), "{stderr}");
    assert!(stderr.contains("projection tree"), "{stderr}");
}

#[test]
fn bad_query_fails_cleanly() {
    let out = gcx_bin()
        .args(["-q", "<r>{ $unbound }</r>", "--compile-only"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unbound"), "{stderr}");
}

#[test]
fn bad_engine_fails_cleanly() {
    let mut child = gcx_bin()
        .args(["-q", "<r/>", "-e", "warp-drive"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The child rejects the engine name without reading stdin, so this
    // write may hit a closed pipe — that is the expected behaviour.
    let _ = child.stdin.as_mut().unwrap().write_all(b"<a/>");
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn serve_runs_queries_times_inputs_concurrently() {
    let dir = std::env::temp_dir().join(format!("gcx-serve-test-{}", std::process::id()));
    let qdir = dir.join("queries");
    let odir = dir.join("out");
    std::fs::create_dir_all(&qdir).unwrap();
    std::fs::write(
        qdir.join("titles.xq"),
        "<r>{ for $b in /bib/book return $b/title }</r>",
    )
    .unwrap();
    std::fs::write(qdir.join("all.xq"), "<r>{ for $x in /bib/* return $x }</r>").unwrap();
    let x1 = dir.join("one.xml");
    let x2 = dir.join("two.xml");
    std::fs::write(&x1, "<bib><book><title>A</title></book></bib>").unwrap();
    std::fs::write(&x2, "<bib><book><title>B</title></book><cd/></bib>").unwrap();
    let out = gcx_bin()
        .args([
            "serve",
            "--queries",
            qdir.to_str().unwrap(),
            x1.to_str().unwrap(),
            x2.to_str().unwrap(),
            "--chunk",
            "7",
            "--output-dir",
            odir.to_str().unwrap(),
        ])
        .output()
        .expect("run gcx serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    // 2 queries × 2 inputs = 4 sessions; each query compiled once.
    assert!(stderr.contains("4 sessions"), "{stderr}");
    assert!(stderr.contains("2 misses"), "{stderr}");
    assert!(stderr.contains("2 hits"), "{stderr}");
    assert!(
        stderr.contains("peak"),
        "per-session stats printed: {stderr}"
    );
    let titles_one = std::fs::read_to_string(odir.join("titles__one.xml")).unwrap();
    assert_eq!(titles_one, "<r><title>A</title></r>");
    let all_two = std::fs::read_to_string(odir.join("all__two.xml")).unwrap();
    assert_eq!(all_two, "<r><book><title>B</title></book><cd></cd></r>");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_isolates_failing_inputs() {
    let dir = std::env::temp_dir().join(format!("gcx-serve-bad-{}", std::process::id()));
    let qdir = dir.join("queries");
    std::fs::create_dir_all(&qdir).unwrap();
    std::fs::write(
        qdir.join("q.xq"),
        "<r>{ for $b in /bib/book return $b/title }</r>",
    )
    .unwrap();
    let good = dir.join("good.xml");
    let bad = dir.join("bad.xml");
    std::fs::write(&good, "<bib><book><title>A</title></book></bib>").unwrap();
    std::fs::write(&bad, "<bib><book></bib>").unwrap();
    let out = gcx_bin()
        .args([
            "serve",
            "--queries",
            qdir.to_str().unwrap(),
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
        ])
        .output()
        .expect("run gcx serve");
    assert!(!out.status.success(), "a failing session fails the batch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("q×good] ok"),
        "good session succeeds: {stderr}"
    );
    assert!(
        stderr.contains("q×bad] FAILED"),
        "bad session isolated: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_requires_queries_dir() {
    let out = gcx_bin().args(["serve"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--queries"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let mut child = gcx_bin()
        .args(["-q", "<r>{ for $x in //k return $x }</r>"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<a><b></a>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}
