//! End-to-end tests of the `gcx` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn gcx_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcx"))
}

#[test]
fn inline_query_over_stdin() {
    let mut child = gcx_bin()
        .args(["-q", "<r>{ for $b in /bib/book return $b/title }</r>"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gcx");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<bib><book><title>T</title></book></bib>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "<r><title>T</title></r>");
}

#[test]
fn query_and_input_files_with_stats() {
    let dir = std::env::temp_dir().join(format!("gcx-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let qfile = dir.join("q.xq");
    let xfile = dir.join("in.xml");
    let ofile = dir.join("out.xml");
    std::fs::write(&qfile, "<r>{ for $x in //k return $x }</r>").unwrap();
    std::fs::write(&xfile, "<a><k>1</k><junk/><k>2</k></a>").unwrap();
    let out = gcx_bin()
        .args([
            qfile.to_str().unwrap(),
            xfile.to_str().unwrap(),
            "--stats",
            "-o",
            ofile.to_str().unwrap(),
        ])
        .output()
        .expect("run gcx");
    assert!(out.status.success());
    let result = std::fs::read_to_string(&ofile).unwrap();
    assert_eq!(result, "<r><k>1</k><k>2</k></r>");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("peak buffer"), "stats on stderr: {stderr}");
    assert!(stderr.contains("balanced"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_selection() {
    for engine in ["gcx", "nogc", "static", "dom"] {
        let mut child = gcx_bin()
            .args([
                "-q",
                "<r>{ for $b in /a/b return $b }</r>",
                "-e",
                engine,
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(b"<a><b>x</b></a>")
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "engine {engine}");
        assert_eq!(String::from_utf8_lossy(&out.stdout), "<r><b>x</b></r>");
    }
}

#[test]
fn plan_and_compile_only() {
    let out = gcx_bin()
        .args([
            "-q",
            "<r>{ for $b in /a/b return $b/c }</r>",
            "--compile-only",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rewritten query"), "{stderr}");
    assert!(stderr.contains("signOff"), "{stderr}");
    assert!(stderr.contains("projection tree"), "{stderr}");
}

#[test]
fn bad_query_fails_cleanly() {
    let out = gcx_bin()
        .args(["-q", "<r>{ $unbound }</r>", "--compile-only"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unbound"), "{stderr}");
}

#[test]
fn bad_engine_fails_cleanly() {
    let mut child = gcx_bin()
        .args(["-q", "<r/>", "-e", "warp-drive"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"<a/>").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let mut child = gcx_bin()
        .args(["-q", "<r>{ for $x in //k return $x }</r>"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"<a><b></a>").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}
