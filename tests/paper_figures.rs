//! Integration tests reproducing the paper's worked figures and examples
//! end-to-end through the public API.

use gcx::query::{compile, pretty_query, CompileOptions};
use gcx::xml::TagInterner;
use gcx::{EngineOptions, GcxEngine};
use std::sync::{Arc, Mutex};

const INTRO_QUERY: &str = r#"<r>{
    for $bib in /bib return
      ((for $x in $bib/* return
          if (not(exists($x/price))) then $x else ()),
       for $b in $bib/book return $b/title)
}</r>"#;

/// Paper Fig. 1: the projection tree derived from the intro query
/// (plain pipeline — no §6 optimizations — to match the figure).
#[test]
fn fig1_projection_tree() {
    let mut tags = TagInterner::new();
    let compiled = compile(INTRO_QUERY, &mut tags, CompileOptions::plain()).unwrap();
    let pretty = compiled.projection.tree.pretty(&tags);
    // Shape: / → bib → {*, book}; * → {price[1], dos}; book → title → dos.
    let lines: Vec<&str> = pretty.lines().collect();
    assert!(lines[0].contains('/'));
    assert!(lines[1].contains("bib"));
    assert!(pretty.contains("price[1]"));
    assert!(pretty.contains("dos::node()"));
    assert!(pretty.contains("title"));
    // Six roles r0..r5 ≙ the paper's r2..r7.
    assert_eq!(compiled.roles.len(), 6);
}

/// Paper Fig. 2: buffer contents step by step while evaluating the intro
/// query on `<bib><book><title/><author/></book>…`.
#[test]
fn fig2_active_gc_trace() {
    let mut tags = TagInterner::new();
    let compiled = compile(INTRO_QUERY, &mut tags, CompileOptions::plain()).unwrap();
    let xml = "<bib><book><title/><author/></book><book><title/><price>1</price></book></bib>";
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = log.clone();
    let mut engine = GcxEngine::new(
        &compiled,
        &mut tags,
        xml.as_bytes(),
        Vec::new(),
        EngineOptions::default(),
    );
    engine.set_tracer(Box::new(move |ev| {
        sink.lock().unwrap().push(ev.buffer.clone());
    }));
    let report = engine.run().expect("run");
    let log = log.lock().unwrap();

    // Role map (plain pipeline): r0=$bib(≙paper r2), r1=$x(r3),
    // r2=exists price[1](r4), r3=output $x dos(r5), r4=$b(r6),
    // r5=title/dos(r7).
    let expect_in_order = [
        // Fig. 2 step 2: <bib> read.
        "bib{r0}",
        // Step 3: <book> buffered with for-, dos- and book-roles.
        "bib{r0} book{r1,r3,r4}",
        // Step 4: <title/> with dos role and title-output role.
        "bib{r0} book{r1,r3,r4} title{r3,r5}",
        // Step 5: <author/> with only the dos role.
        "bib{r0} book{r1,r3,r4} title{r3,r5} author{r3}",
        // Step 7 (after </book> + output + signOffs): author purged,
        // book and title keep the roles of the *second* loop.
        "bib{r0} book{r4} title{r5}",
    ];
    let mut pos = 0;
    for buffer in log.iter() {
        if pos < expect_in_order.len() && buffer == expect_in_order[pos] {
            pos += 1;
        }
    }
    assert_eq!(
        pos,
        expect_in_order.len(),
        "missing Fig. 2 state #{pos}; trace was:\n{}",
        log.join("\n")
    );
    assert_eq!(report.safety, Some(true));
    // At the very end the buffer holds only the virtual root.
    assert_eq!(report.stats.live_nodes, 1);
}

/// The rewritten intro query of §1: signOff statements in the right
/// places (plain pipeline).
#[test]
fn intro_rewritten_query_matches_paper() {
    let mut tags = TagInterner::new();
    let compiled = compile(INTRO_QUERY, &mut tags, CompileOptions::plain()).unwrap();
    let s = pretty_query(&compiled.rewritten, &tags);
    // Same statements as the paper's rewritten query (role names shifted
    // by two: paper counts from r2).
    for frag in [
        "signOff($x, r1)",
        "signOff($x/price[1], r2)",
        "signOff($x/dos::node(), r3)",
        "signOff($b, r4)",
        "signOff($b/title/dos::node(), r5)",
        "signOff($bib, r0)",
    ] {
        assert!(s.contains(frag), "missing {frag} in: {s}");
    }
}

/// Paper Fig. 9 / Example 6/8: the non-straight variable's updates are
/// issued at the end of the $root scope through the variable path.
#[test]
fn fig9_signoff_placement() {
    let mut tags = TagInterner::new();
    let compiled = compile(
        "<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>",
        &mut tags,
        CompileOptions::plain(),
    )
    .unwrap();
    let s = pretty_query(&compiled.rewritten, &tags);
    assert!(s.contains("signOff($a, r0)"), "got {s}");
    assert!(s.contains("signOff($root//b, r1)"), "got {s}");
    assert!(
        s.rfind("signOff($root//b, r1)").unwrap() > s.rfind("</a>").unwrap_or(0),
        "root update comes after the outer loop: {s}"
    );
}

/// Paper Example 7: evaluating Example 4's query with its signOffs over
/// the matching projected document is safe and produces the same output
/// as the oracle (Theorem 1 on the figure's workload).
#[test]
fn example7_safety_on_matching_tree() {
    // Document T of Fig. 4(a): a { a { b }, b }.
    let doc = "<a><a><b></b></a><b></b></a>";
    let query = "<q>{ for $a in //a return <a2>{ for $b in $a//b return <b2/> }</a2> }</q>";
    let gcx_out = gcx::evaluate_to_string(query, doc).unwrap();
    let mut tags = TagInterner::new();
    let compiled = gcx::compile_default(query, &mut tags).unwrap();
    let mut dom_out = Vec::new();
    gcx::run_dom(&compiled, &mut tags, doc.as_bytes(), &mut dom_out).unwrap();
    assert_eq!(gcx_out, String::from_utf8(dom_out).unwrap());
    // The outer a sees both b's; the inner a sees one.
    assert_eq!(
        gcx_out,
        "<q><a2><b2></b2><b2></b2></a2><a2><b2></b2></a2></q>"
    );
}

/// Paper Fig. 12: the optimized pipeline eliminates the redundant roles
/// r3 and r6 (ours r1/r4) — fewer role instances are assigned at runtime
/// for the same document, with identical output.
#[test]
fn fig12_redundant_roles_reduce_traffic() {
    let xml = "<bib><book><title>A</title><author>x</author></book>\
               <book><title>B</title><price>3</price></book></bib>";
    let run = |opts: CompileOptions| {
        let mut tags = TagInterner::new();
        let compiled = compile(INTRO_QUERY, &mut tags, opts).unwrap();
        let mut out = Vec::new();
        let report = gcx::run_gcx(&compiled, &mut tags, xml.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), report)
    };
    let (out_plain, plain) = run(CompileOptions::plain());
    let (out_opt, opt) = run(CompileOptions::default());
    assert_eq!(out_plain, out_opt, "optimizations preserve the result");
    assert!(
        opt.stats.roles_assigned < plain.stats.roles_assigned,
        "optimized {} < plain {}",
        opt.stats.roles_assigned,
        plain.stats.roles_assigned
    );
    assert_eq!(plain.safety, Some(true));
    assert_eq!(opt.safety, Some(true));
}

/// The paper's §6 "early updates" motivation: a book with several titles
/// releases each title right after outputting it.
#[test]
fn early_updates_release_per_title() {
    let query = "<r>{ for $b in /bib/book return $b/title }</r>";
    let xml = "<bib><book><title>1</title><title>2</title><title>3</title></book></bib>";
    let run = |opts: CompileOptions| {
        let mut tags = TagInterner::new();
        let compiled = compile(query, &mut tags, opts).unwrap();
        let mut out = Vec::new();
        let report = gcx::run_gcx(&compiled, &mut tags, xml.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), report)
    };
    let (o1, with) = run(CompileOptions::default());
    let (o2, without) = run(CompileOptions {
        early_updates: false,
        ..CompileOptions::default()
    });
    assert_eq!(o1, o2);
    assert_eq!(
        o1,
        "<r><title>1</title><title>2</title><title>3</title></r>"
    );
    assert!(with.safety == Some(true) && without.safety == Some(true));
}
