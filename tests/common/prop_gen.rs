const TAGS: &[&str] = &["a", "b", "c", "d", "t"];

fn render_doc(seed: u64, fanout: usize, depth: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::from("<root>");
    build_elems(&mut rng, &mut s, fanout, depth);
    s.push_str("</root>");
    s
}

fn build_elems(rng: &mut StdRng, s: &mut String, fanout: usize, depth: usize) {
    let n = rng.random_range(0..=fanout);
    for _ in 0..n {
        if depth == 0 || rng.random_bool(0.3) {
            // Text or empty leaf.
            if rng.random_bool(0.5) {
                let v = rng.random_range(0..30).to_string();
                let tag = TAGS[rng.random_range(0..TAGS.len())];
                s.push_str(&format!("<{tag}>{v}</{tag}>"));
            } else {
                let tag = TAGS[rng.random_range(0..TAGS.len())];
                s.push_str(&format!("<{tag}/>"));
            }
        } else {
            let tag = TAGS[rng.random_range(0..TAGS.len())];
            s.push_str(&format!("<{tag}>"));
            build_elems(rng, s, fanout, depth - 1);
            s.push_str(&format!("</{tag}>"));
        }
    }
}

// ----------------------------------------------------------------------
// Random queries
// ----------------------------------------------------------------------

struct QGen {
    rng: StdRng,
    next_var: usize,
}

impl QGen {
    fn step(&mut self) -> String {
        let axis = if self.rng.random_bool(0.3) { "//" } else { "/" };
        let test = match self.rng.random_range(0..6) {
            0 => "*",
            1 => "text()",
            i => TAGS[i - 2],
        };
        // `//text()` is legal; `/*` too.
        format!("{axis}{test}")
    }

    fn elem_step(&mut self) -> String {
        let axis = if self.rng.random_bool(0.3) { "//" } else { "/" };
        let test = match self.rng.random_range(0..5) {
            0 => "*",
            i => TAGS[i - 1],
        };
        format!("{axis}{test}")
    }

    fn cond(&mut self, vars: &[String], depth: usize) -> String {
        let v = &vars[self.rng.random_range(0..vars.len())];
        match self.rng.random_range(0..if depth == 0 { 4 } else { 6 }) {
            0 => format!("exists(${v}{})", self.step()),
            1 => "true()".to_string(),
            2 => {
                let op = ["=", "<", ">=", "<=", ">"][self.rng.random_range(0..5)];
                let lit = self.rng.random_range(0..30);
                format!("${v}{} {op} \"{lit}\"", self.step())
            }
            3 => {
                let w = &vars[self.rng.random_range(0..vars.len())];
                format!("${v}{} = ${w}{}", self.step(), self.step())
            }
            4 => format!("not({})", self.cond(vars, depth - 1)),
            _ => {
                let con = if self.rng.random_bool(0.5) { "and" } else { "or" };
                format!(
                    "({} {con} {})",
                    self.cond(vars, depth - 1),
                    self.cond(vars, depth - 1)
                )
            }
        }
    }

    fn expr(&mut self, vars: &[String], depth: usize) -> String {
        if depth == 0 {
            let v = &vars[self.rng.random_range(0..vars.len())];
            return if self.rng.random_bool(0.4) && v != "root" {
                format!("${v}")
            } else {
                format!("${v}{}", self.step())
            };
        }
        match self.rng.random_range(0..8) {
            0..=2 => {
                // for-loop over a fresh variable.
                let name = format!("v{}", self.next_var);
                self.next_var += 1;
                let src = &vars[self.rng.random_range(0..vars.len())];
                let source = if src == "root" {
                    String::new()
                } else {
                    format!("${src}")
                };
                let step = self.elem_step();
                let mut inner: Vec<String> = vars.to_vec();
                inner.push(name.clone());
                format!(
                    "for ${name} in {source}{step} return ({})",
                    self.expr(&inner, depth - 1)
                )
            }
            3 => format!(
                "if ({}) then ({}) else ({})",
                self.cond(vars, 1),
                self.expr(vars, depth - 1),
                self.expr(vars, depth - 1)
            ),
            4 => format!("<w>{{ {} }}</w>", self.expr(vars, depth - 1)),
            5 => format!(
                "({}, {})",
                self.expr(vars, depth - 1),
                self.expr(vars, depth - 1)
            ),
            6 => "()".to_string(),
            _ => {
                let v = &vars[self.rng.random_range(0..vars.len())];
                format!("${v}{}", self.step())
            }
        }
    }
}

fn random_query(seed: u64) -> String {
    let mut g = QGen {
        rng: StdRng::seed_from_u64(seed),
        next_var: 0,
    };
    let body = g.expr(&["root".to_string()], 3);
    format!("<q>{{ {body} }}</q>")
}

