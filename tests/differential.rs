//! Theorem 1 differential testing: for every (query, document) pair, the
//! GCX engine over the rewritten query and projected stream produces the
//! same result as the in-memory oracle over the original query — and the
//! other two engine strategies agree as well. Additionally the paper's
//! safety requirements hold: all role removals defined, all roles
//! returned.

use gcx::query::{compile, CompileOptions};
use gcx::xml::TagInterner;

/// Runs all four engines and the two compile modes; asserts agreement and
/// safety. Returns the common output.
fn check_all(query: &str, doc: &str) -> String {
    let mut reference: Option<String> = None;
    for copts in [CompileOptions::default(), CompileOptions::plain()] {
        let mut tags = TagInterner::new();
        let compiled = compile(query, &mut tags, copts)
            .unwrap_or_else(|e| panic!("compile failed for {query}: {e}"));
        type RunResult = Result<(Vec<u8>, Option<bool>), String>;
        let runs: Vec<(&str, RunResult)> = vec![
            ("dom", {
                let mut out = Vec::new();
                gcx::run_dom(&compiled, &mut tags, doc.as_bytes(), &mut out)
                    .map(|r| (out, r.safety))
                    .map_err(|e| e.to_string())
            }),
            ("gcx", {
                let mut out = Vec::new();
                gcx::run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out)
                    .map(|r| (out, r.safety))
                    .map_err(|e| e.to_string())
            }),
            ("nogc", {
                let mut out = Vec::new();
                gcx::run_no_gc_streaming(&compiled, &mut tags, doc.as_bytes(), &mut out)
                    .map(|r| (out, r.safety))
                    .map_err(|e| e.to_string())
            }),
            ("static", {
                let mut out = Vec::new();
                gcx::run_static_projection(&compiled, &mut tags, doc.as_bytes(), &mut out)
                    .map(|r| (out, r.safety))
                    .map_err(|e| e.to_string())
            }),
        ];
        for (name, res) in runs {
            let (out, safety) = res.unwrap_or_else(|e| panic!("{name} failed on {query}: {e}"));
            let out = String::from_utf8(out).unwrap();
            if name == "gcx" {
                assert_eq!(
                    safety,
                    Some(true),
                    "role accounting violated for {query} on {doc}"
                );
            }
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    r, &out,
                    "{name} (opts {copts:?}) disagrees on {query} over {doc}"
                ),
            }
        }
    }
    reference.unwrap()
}

const DOC_BIB: &str = "<bib>\
    <book><title>T1</title><author>A</author><price>12</price></book>\
    <book><title>T2</title><author>B</author></book>\
    <cd><title>T3</title><label>L</label></cd>\
    <book><title>T4</title><price>7</price><price>9</price></book>\
</bib>";

const DOC_NESTED: &str =
    "<a><a><b><b>x</b></b><c><b>y</b></c></a><b>z</b><d><e><b>w</b></e></d></a>";

const DOC_PEOPLE: &str = "<db>\
    <person><id>1</id><name>Ann</name><age>34</age></person>\
    <person><id>2</id><name>Bob</name></person>\
    <sale><buyer>2</buyer><sum>10</sum></sale>\
    <sale><buyer>1</buyer><sum>20</sum></sale>\
    <sale><buyer>2</buyer><sum>30</sum></sale>\
</db>";

#[test]
fn child_axis_outputs() {
    check_all("<r>{ for $b in /bib/book return $b/title }</r>", DOC_BIB);
    check_all("<r>{ for $b in /bib/book return $b }</r>", DOC_BIB);
    check_all("<r>{ for $x in /bib/* return $x/title }</r>", DOC_BIB);
}

#[test]
fn descendant_axis_outputs() {
    check_all("<r>{ for $b in //b return $b }</r>", DOC_NESTED);
    check_all(
        "<r>{ for $a in //a return for $b in $a//b return <hit/> }</r>",
        DOC_NESTED,
    );
    check_all("<r>{ for $t in /bib//title return $t/text() }</r>", DOC_BIB);
}

#[test]
fn conditions() {
    check_all(
        r#"<r>{ for $b in /bib/book return
            if (exists($b/price)) then $b/title else () }</r>"#,
        DOC_BIB,
    );
    check_all(
        r#"<r>{ for $b in /bib/book return
            if (not(exists($b/price))) then $b else () }</r>"#,
        DOC_BIB,
    );
    check_all(
        r#"<r>{ for $b in /bib/book return
            if ($b/price >= 9 and exists($b/author)) then $b/title else <cheap/> }</r>"#,
        DOC_BIB,
    );
    check_all(
        r#"<r>{ for $b in /bib/book return
            if ($b/title = "T2" or $b/price < 8) then $b/author else () }</r>"#,
        DOC_BIB,
    );
}

#[test]
fn joins() {
    check_all(
        r#"<r>{ for $p in /db/person return
            <row>{ ($p/name, for $s in /db/sale return
                if ($s/buyer = $p/id) then $s/sum else ()) }</row> }</r>"#,
        DOC_PEOPLE,
    );
    check_all(
        r#"<r>{ for $s in /db/sale return for $p in /db/person return
            if ($p/id = $s/buyer) then <pair>{ $p/name }</pair> else () }</r>"#,
        DOC_PEOPLE,
    );
}

#[test]
fn constructors_and_sequences() {
    check_all(
        r#"<r>{ for $b in /bib/book return
            <entry><head>{ $b/title }</head><tail>{ ($b/author, $b/price) }</tail></entry> }</r>"#,
        DOC_BIB,
    );
    check_all("<r><empty/>{ () }<also/></r>", DOC_BIB);
}

#[test]
fn star_and_text_tests() {
    check_all(
        "<r>{ for $x in /bib/* return <k>{ $x/text() }</k> }</r>",
        DOC_BIB,
    );
    check_all("<r>{ for $t in //title return $t/text() }</r>", DOC_BIB);
}

#[test]
fn multiple_passes_over_stream() {
    // Three sequential loops over the same region force buffering across
    // scopes; results must still agree.
    check_all(
        r#"<r>{ (for $b in /bib/book return $b/title,
                for $b in /bib/book return $b/author,
                for $c in /bib/cd return $c/label) }</r>"#,
        DOC_BIB,
    );
}

#[test]
fn deeply_nested_loops() {
    check_all(
        r#"<r>{ for $a in /a/a return
                 for $x in $a/* return
                   for $b in $x/b return <leaf>{ $b/text() }</leaf> }</r>"#,
        DOC_NESTED,
    );
}

#[test]
fn empty_and_missing_paths() {
    check_all("<r>{ for $z in /bib/zzz return $z }</r>", DOC_BIB);
    check_all(
        "<r>{ for $b in /bib/book return for $z in $b/zzz return $z }</r>",
        DOC_BIB,
    );
    check_all("<r>{ for $b in //nothing return $b }</r>", "<a/>");
}

#[test]
fn whitespace_and_mixed_content() {
    let doc = "<a>\n  <b> x </b>\n  <b>y<c/>z</b>\n</a>";
    check_all("<r>{ for $b in /a/b return $b }</r>", doc);
    check_all("<r>{ for $b in /a/b return $b/text() }</r>", doc);
}

#[test]
fn numeric_vs_string_comparisons() {
    let doc = "<l><v>9</v><v>10</v><v>x10</v><v>02</v></l>";
    check_all(
        r#"<r>{ for $v in /l/v return if ($v/text() < 10) then $v else () }</r>"#,
        doc,
    );
    check_all(
        r#"<r>{ for $v in /l/v return if ($v/text() = "02") then $v else () }</r>"#,
        doc,
    );
}

#[test]
fn root_variable_queries() {
    check_all("<r>{ for $b in $root/bib return $b/cd }</r>", DOC_BIB);
    // Descendants straight from the root.
    check_all("<r>{ for $t in //title return <t/> }</r>", DOC_BIB);
}

#[test]
fn let_inlining() {
    // Path-valued lets are removed by inlining (paper §3: "in many
    // practical queries, let-expressions can be removed").
    check_all(
        "<r>{ let $books := /bib/book return for $b in $books/title return $b }</r>",
        DOC_BIB,
    );
    check_all(
        r#"<r>{ for $b in /bib/book return
            let $p := $b/price return
            if (exists($b/author)) then $p else () }</r>"#,
        DOC_BIB,
    );
}

#[test]
fn recursive_document_shapes() {
    // //a//b over self-similar nesting: multiplicities stress role
    // accounting (paper Example 1/3).
    let doc = "<a><a><a><b><b/></b></a></a><b/></a>";
    check_all(
        "<r>{ for $a in //a return for $b in $a//b return <x/> }</r>",
        doc,
    );
    check_all("<r>{ for $b in //a return $b }</r>", doc);
}
