//! Chunk-boundary robustness of the push-based session runtime.
//!
//! For every (query, document) pair of the differential corpus, a
//! [`gcx::StreamSession`] must produce output **byte-identical** to the
//! one-shot [`gcx::run_gcx`] — with the same reported peak buffer size —
//! under *any* chunking of the input: one byte at a time, random split
//! points (which land mid-tag, mid-entity and mid-text), and the whole
//! document as a single chunk. Also exercises a concurrent run of ≥ 8
//! sessions through one `QueryService` with measured cache hits.

use gcx::query::CompileOptions;
use gcx::xml::TagInterner;
use gcx::{BatchJob, QueryService, ServiceConfig};

/// The differential corpus (kept in sync with `tests/differential.rs`).
const DOC_BIB: &str = "<bib>\
    <book><title>T1</title><author>A</author><price>12</price></book>\
    <book><title>T2</title><author>B</author></book>\
    <cd><title>T3</title><label>L</label></cd>\
    <book><title>T4</title><price>7</price><price>9</price></book>\
</bib>";

const DOC_NESTED: &str =
    "<a><a><b><b>x</b></b><c><b>y</b></c></a><b>z</b><d><e><b>w</b></e></d></a>";

const DOC_PEOPLE: &str = "<db>\
    <person><id>1</id><name>Ann</name><age>34</age></person>\
    <person><id>2</id><name>Bob</name></person>\
    <sale><buyer>2</buyer><sum>10</sum></sale>\
    <sale><buyer>1</buyer><sum>20</sum></sale>\
    <sale><buyer>2</buyer><sum>30</sum></sale>\
</db>";

const DOC_MIXED: &str = "<a>\n  <b> x </b>\n  <b>y<c/>z</b>\n</a>";

const DOC_VALUES: &str = "<l><v>9</v><v>10</v><v>x10</v><v>02</v></l>";

fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("<r>{ for $b in /bib/book return $b/title }</r>", DOC_BIB),
        ("<r>{ for $b in /bib/book return $b }</r>", DOC_BIB),
        ("<r>{ for $x in /bib/* return $x/title }</r>", DOC_BIB),
        ("<r>{ for $b in //b return $b }</r>", DOC_NESTED),
        (
            "<r>{ for $a in //a return for $b in $a//b return <hit/> }</r>",
            DOC_NESTED,
        ),
        ("<r>{ for $t in /bib//title return $t/text() }</r>", DOC_BIB),
        (
            r#"<r>{ for $b in /bib/book return
                if (exists($b/price)) then $b/title else () }</r>"#,
            DOC_BIB,
        ),
        (
            r#"<r>{ for $b in /bib/book return
                if (not(exists($b/price))) then $b else () }</r>"#,
            DOC_BIB,
        ),
        (
            r#"<r>{ for $b in /bib/book return
                if ($b/price >= 9 and exists($b/author)) then $b/title else <cheap/> }</r>"#,
            DOC_BIB,
        ),
        (
            r#"<r>{ for $b in /bib/book return
                if ($b/title = "T2" or $b/price < 8) then $b/author else () }</r>"#,
            DOC_BIB,
        ),
        (
            r#"<r>{ for $p in /db/person return
                <row>{ ($p/name, for $s in /db/sale return
                    if ($s/buyer = $p/id) then $s/sum else ()) }</row> }</r>"#,
            DOC_PEOPLE,
        ),
        (
            r#"<r>{ for $s in /db/sale return for $p in /db/person return
                if ($p/id = $s/buyer) then <pair>{ $p/name }</pair> else () }</r>"#,
            DOC_PEOPLE,
        ),
        (
            r#"<r>{ for $b in /bib/book return
                <entry><head>{ $b/title }</head><tail>{ ($b/author, $b/price) }</tail></entry> }</r>"#,
            DOC_BIB,
        ),
        ("<r><empty/>{ () }<also/></r>", DOC_BIB),
        (
            "<r>{ for $x in /bib/* return <k>{ $x/text() }</k> }</r>",
            DOC_BIB,
        ),
        (
            r#"<r>{ (for $b in /bib/book return $b/title,
                    for $b in /bib/book return $b/author,
                    for $c in /bib/cd return $c/label) }</r>"#,
            DOC_BIB,
        ),
        (
            r#"<r>{ for $a in /a/a return
                     for $x in $a/* return
                       for $b in $x/b return <leaf>{ $b/text() }</leaf> }</r>"#,
            DOC_NESTED,
        ),
        ("<r>{ for $z in /bib/zzz return $z }</r>", DOC_BIB),
        ("<r>{ for $b in //nothing return $b }</r>", "<a/>"),
        ("<r>{ for $b in /a/b return $b }</r>", DOC_MIXED),
        ("<r>{ for $b in /a/b return $b/text() }</r>", DOC_MIXED),
        (
            r#"<r>{ for $v in /l/v return if ($v/text() < 10) then $v else () }</r>"#,
            DOC_VALUES,
        ),
        ("<r>{ for $b in $root/bib return $b/cd }</r>", DOC_BIB),
        (
            "<r>{ let $books := /bib/book return for $b in $books/title return $b }</r>",
            DOC_BIB,
        ),
        (
            "<r>{ for $a in //a return for $b in $a//b return <x/> }</r>",
            "<a><a><a><b><b/></b></a></a><b/></a>",
        ),
    ]
}

fn one_shot(query: &str, doc: &str) -> (String, usize) {
    let mut tags = TagInterner::new();
    let compiled = gcx::compile(query, &mut tags, CompileOptions::default()).expect("compile");
    let mut out = Vec::new();
    let report = gcx::run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).expect("run");
    (String::from_utf8(out).unwrap(), report.stats.peak_nodes)
}

fn chunked(query: &str, chunks: Vec<&[u8]>) -> (String, usize) {
    let (out, report) = gcx::evaluate_chunked(query, chunks).expect("chunked run");
    (out, report.stats.peak_nodes)
}

/// Tiny deterministic LCG for split points (no external deps needed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

fn random_chunking<'a>(doc: &'a [u8], rng: &mut Lcg) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    while pos < doc.len() {
        let len = 1 + rng.next(9); // 1..=9 byte chunks: splits land mid-token
        let end = (pos + len).min(doc.len());
        chunks.push(&doc[pos..end]);
        pos = end;
    }
    chunks
}

#[test]
fn single_chunk_matches_one_shot() {
    for (query, doc) in corpus() {
        let (want, want_peak) = one_shot(query, doc);
        let (got, got_peak) = chunked(query, vec![doc.as_bytes()]);
        assert_eq!(want, got, "output differs for {query}");
        assert_eq!(want_peak, got_peak, "peak_nodes differs for {query}");
    }
}

#[test]
fn one_byte_chunks_match_one_shot() {
    for (query, doc) in corpus() {
        let (want, want_peak) = one_shot(query, doc);
        let chunks: Vec<&[u8]> = doc.as_bytes().chunks(1).collect();
        let (got, got_peak) = chunked(query, chunks);
        assert_eq!(want, got, "1-byte feeding differs for {query}");
        assert_eq!(want_peak, got_peak, "peak_nodes differs for {query}");
    }
}

#[test]
fn random_split_points_match_one_shot() {
    for (ci, (query, doc)) in corpus().into_iter().enumerate() {
        let (want, want_peak) = one_shot(query, doc);
        for round in 0..5u64 {
            let mut rng = Lcg(0x9E3779B97F4A7C15 ^ (ci as u64) << 8 ^ round);
            let chunks = random_chunking(doc.as_bytes(), &mut rng);
            let (got, got_peak) = chunked(query, chunks);
            assert_eq!(
                want, got,
                "random chunking differs for {query} (round {round})"
            );
            assert_eq!(
                want_peak, got_peak,
                "peak_nodes differs for {query} (round {round})"
            );
        }
    }
}

#[test]
fn multibyte_utf8_split_across_chunks() {
    let query = "<r>{ for $n in /a/name return $n/text() }</r>";
    let doc = "<a><name>héllo — wörld</name><name>ünïcode</name></a>";
    let (want, _) = one_shot(query, doc);
    // Every 1-byte split necessarily cuts the multi-byte characters.
    let chunks: Vec<&[u8]> = doc.as_bytes().chunks(1).collect();
    let (got, _) = chunked(query, chunks);
    assert_eq!(want, got);
}

#[test]
fn eight_concurrent_sessions_share_cache() {
    // ≥ 8 sessions through one service: correct isolated outputs and at
    // least one measured cache hit (acceptance criterion).
    let service = QueryService::new(ServiceConfig {
        max_concurrency: 8,
        ..Default::default()
    });
    let corpus = corpus();
    let jobs: Vec<BatchJob> = corpus
        .iter()
        .take(6)
        .cycle()
        .take(12)
        .enumerate()
        .map(|(i, (query, doc))| BatchJob {
            query: query.to_string(),
            input: doc.as_bytes().into(),
            label: format!("job{i}"),
        })
        .collect();
    let results = service.run_batch(&jobs, 16);
    assert_eq!(results.len(), 12);
    for (job, result) in jobs.iter().zip(&results) {
        let outcome = result.as_ref().expect("job succeeds");
        let (want, want_peak) = one_shot(&job.query, std::str::from_utf8(&job.input).unwrap());
        assert_eq!(
            String::from_utf8(outcome.output.clone()).unwrap(),
            want,
            "wrong output for {}",
            job.label
        );
        assert_eq!(outcome.report.stats.peak_nodes, want_peak);
        assert_eq!(outcome.report.safety, Some(true));
    }
    let stats = service.stats();
    assert_eq!(stats.sessions_opened, 12);
    assert_eq!(stats.cache_misses, 6, "six distinct queries");
    assert!(stats.cache_hits >= 6, "repeats hit the cache: {stats:?}");
}
