//! Maintenance harness: replays a failing (query-seed, doc-seed) pair
//! from the property-test generators and dumps the compiled artifacts,
//! projection tree and per-role accounting — the tool used to diagnose
//! the two bugs recorded in DESIGN.md ("resurrection of marked nodes",
//! "positional firing under multiplicity").
//!
//! ```text
//! cargo run --example debug_case <query-seed> <doc-seed>
//! ```
use gcx::query::{compile, CompileOptions};
use gcx::xml::TagInterner;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

include!("../tests/common/prop_gen.rs");

fn main() {
    let qseed: u64 = std::env::args().nth(1).unwrap().parse().unwrap();
    let dseed: u64 = std::env::args().nth(2).unwrap().parse().unwrap();
    let query = random_query(qseed);
    let doc = render_doc(dseed, 3, 3);
    println!("QUERY:\n{query}\n\nDOC:\n{doc}\n");
    let mut tags = TagInterner::new();
    let compiled = compile(&query, &mut tags, CompileOptions::default()).unwrap();
    println!(
        "REWRITTEN:\n{}\n",
        gcx::query::pretty_query(&compiled.rewritten, &tags)
    );
    println!("PROJECTION:\n{}", compiled.projection.tree.pretty(&tags));
    let mut out = Vec::new();
    let report = gcx::run_gcx(&compiled, &mut tags, doc.as_bytes(), &mut out).unwrap();
    println!("safety: {:?}", report.safety);
    for (i, (a, r)) in report.role_balance.iter().enumerate() {
        println!(
            "  r{i}: assigned={a} removed={r}   ({})",
            compiled.roles.origin(gcx::projection::Role(i as u32))
        );
    }
    println!(
        "assigned={} removed={}",
        report.stats.roles_assigned, report.stats.roles_removed
    );
}
