//! Reproduces the paper's **Figure 1** (the projection tree of the
//! introductory query) and **Figure 2** (the step-by-step buffer contents
//! under active garbage collection).
//!
//! ```text
//! cargo run --example trace_gc
//! ```

use gcx::query::{compile_default, pretty_query};
use gcx::xml::TagInterner;
use gcx::{EngineOptions, GcxEngine};
use std::sync::{Arc, Mutex};

fn main() {
    let query = r#"<r>{
        for $bib in /bib return
          ((for $x in $bib/* return
              if (not(exists($x/price))) then $x else ()),
           for $b in $bib/book return $b/title)
    }</r>"#;

    // The stream of paper Fig. 2.
    let xml = "<bib><book><title/><author/></book><book><title/><price>1</price></book></bib>";

    let mut tags = TagInterner::new();
    let compiled = compile_default(query, &mut tags).expect("compile");

    println!("=== Paper Fig. 1: derived projection tree ===\n");
    println!("{}", compiled.projection.tree.pretty(&tags));

    println!("=== Rewritten query with signOff statements (paper §1) ===\n");
    println!("{}\n", pretty_query(&compiled.rewritten, &tags));

    println!("=== Paper Fig. 2: buffer contents while evaluating ===\n");
    let log: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = log.clone();
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

    struct SharedOut(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut engine = GcxEngine::new(
        &compiled,
        &mut tags,
        xml.as_bytes(),
        SharedOut(out.clone()),
        EngineOptions::default(),
    );
    let out_for_trace = out.clone();
    engine.set_tracer(Box::new(move |ev| {
        let output = String::from_utf8_lossy(&out_for_trace.lock().unwrap()).into_owned();
        sink.lock()
            .unwrap()
            .push((format!("{:<24} out: {output}", ev.label), ev.buffer.clone()));
    }));
    let report = engine.run().expect("run");

    let mut last_buffer = String::new();
    let mut step = 0;
    for (label, buffer) in log.lock().unwrap().iter() {
        // Only print steps where the buffer changed (Fig. 2 shows those).
        if *buffer != last_buffer {
            step += 1;
            println!("step {step:>2}  {label}");
            println!("         buffer: [{buffer}]");
            last_buffer = buffer.clone();
        }
    }

    println!(
        "\nFinal output: {}",
        String::from_utf8_lossy(&out.lock().unwrap())
    );
    println!(
        "Peak buffered nodes: {} — all roles returned: {:?}",
        report.stats.peak_nodes, report.safety
    );
}
