//! Generates an XMark-like document and runs the paper's benchmark
//! queries through GCX, printing per-query statistics — a miniature
//! Table 1 row.
//!
//! ```text
//! cargo run --release --example xmark_demo [-- <MB> [seed]]
//! ```

use gcx::xmark;
use gcx::TagInterner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mb: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Generating ~{mb} MB of XMark-like data (seed {seed})…");
    let cfg = xmark::XmarkConfig { seed, scale: mb };
    let mut doc = Vec::new();
    let bytes = xmark::generate(cfg, &mut doc).expect("generate");
    println!("Generated {} bytes.\n", bytes);

    println!(
        "{:<6} {:>10} {:>14} {:>12} {:>12} {:>12}",
        "query", "time", "peak buffer", "output", "tokens", "skipped"
    );
    for (name, query) in xmark::ALL {
        if *name == "Q8" && mb > 2.0 {
            println!("{name:<6} (skipped: quadratic join at this scale)");
            continue;
        }
        let mut tags = TagInterner::new();
        let compiled = gcx::compile_default(query, &mut tags).expect("compile");
        let mut sink = std::io::sink();
        let start = std::time::Instant::now();
        let report = gcx::run_gcx(&compiled, &mut tags, &doc[..], &mut sink).expect("run");
        let elapsed = start.elapsed();
        println!(
            "{:<6} {:>9.3}s {:>14} {:>12} {:>12} {:>12}",
            name,
            elapsed.as_secs_f64(),
            report.stats.peak_human(),
            report.output_bytes,
            report.tokens_read,
            report.tokens_skipped,
        );
        assert_eq!(report.safety, Some(true), "{name}: roles must balance");
    }
    println!("\nEvery run verified: all assigned role instances were removed");
    println!("(paper safety requirement 2).");
}
