//! Quickstart: compile a query, stream a document through GCX, print the
//! result and the buffer statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

fn main() {
    // The paper's introductory query: output every child of bib that has
    // no price, then all book titles.
    let query = r#"<r>{
        for $bib in /bib return
          ((for $x in $bib/* return
              if (not(exists($x/price))) then $x else ()),
           for $b in $bib/book return $b/title)
    }</r>"#;

    let xml = "<bib>\
        <book><title>Streaming XQuery</title><author>Schmidt</author></book>\
        <book><title>Buffer Minimization</title><price>42</price></book>\
        <cd><label>Active GC</label></cd>\
    </bib>";

    println!("Query:\n{query}\n");
    println!("Input:\n{xml}\n");

    let (output, report) = gcx::evaluate_with_report(query, xml).expect("evaluation");

    println!("Output:\n{output}\n");
    println!("Run report ({}):", report.engine);
    println!("  output bytes       : {}", report.output_bytes);
    println!("  peak buffered nodes: {}", report.stats.peak_nodes);
    println!("  peak buffer memory : {}", report.stats.peak_human());
    println!("  roles assigned     : {}", report.stats.roles_assigned);
    println!("  roles removed      : {}", report.stats.roles_removed);
    println!("  gc node visits     : {}", report.stats.gc_visits);
    println!(
        "  safety (all roles returned): {}",
        report.safety.map(|b| b.to_string()).unwrap_or_default()
    );
}
