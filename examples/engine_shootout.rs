//! Runs the same query through all four engines (GCX, no-GC streaming,
//! static projection, DOM) and compares output equality, time, and — the
//! paper's headline — peak buffer memory.
//!
//! ```text
//! cargo run --release --example engine_shootout [-- <MB>]
//! ```

use gcx::xmark;
use gcx::TagInterner;

#[derive(Clone, Copy)]
enum Which {
    Gcx,
    NoGc,
    StaticProj,
    Dom,
}

fn main() {
    let mb: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let cfg = xmark::XmarkConfig {
        seed: 42,
        scale: mb,
    };
    let mut doc = Vec::new();
    xmark::generate(cfg, &mut doc).expect("generate");
    println!(
        "Engine shootout on XMark Q1 over {:.1} MB of data\n",
        doc.len() as f64 / (1024.0 * 1024.0)
    );

    let engines = [
        ("GCX (projection + active GC)", Which::Gcx),
        ("No-GC streaming (static only)", Which::NoGc),
        ("Static projection (Galax[13])", Which::StaticProj),
        ("DOM (in-memory baseline)", Which::Dom),
    ];

    let mut reference: Option<Vec<u8>> = None;
    println!(
        "{:<32} {:>10} {:>14} {:>12}",
        "engine", "time", "peak buffer", "peak nodes"
    );
    for (name, which) in engines {
        let mut tags = TagInterner::new();
        let compiled = gcx::compile_default(xmark::Q1, &mut tags).expect("compile");
        let mut out = Vec::new();
        let report = match which {
            Which::Gcx => gcx::run_gcx(&compiled, &mut tags, &doc[..], &mut out),
            Which::NoGc => gcx::run_no_gc_streaming(&compiled, &mut tags, &doc[..], &mut out),
            Which::StaticProj => {
                gcx::run_static_projection(&compiled, &mut tags, &doc[..], &mut out)
            }
            Which::Dom => gcx::run_dom(&compiled, &mut tags, &doc[..], &mut out),
        }
        .expect("run");
        println!(
            "{:<32} {:>9.3}s {:>14} {:>12}",
            name,
            report.elapsed.as_secs_f64(),
            report.stats.peak_human(),
            report.stats.peak_nodes
        );
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(r, &out, "{name} output differs"),
        }
    }
    println!("\nAll engines produced identical output (Theorem 1).");
}
