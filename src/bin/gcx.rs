//! `gcx` — command-line streaming XQuery processor.
//!
//! ```text
//! gcx <QUERY-FILE | -q 'inline query'> [XML-FILE] [options]
//!
//! Options:
//!   -q, --query <TEXT>     inline query text instead of a query file
//!   -e, --engine <NAME>    gcx (default) | nogc | static | dom
//!   -o, --output <FILE>    write result to FILE (default stdout)
//!       --stats            print buffer/GC statistics to stderr
//!       --plan             print the rewritten query and projection tree
//!       --no-optimize      disable the §6 optimizations
//!       --compile-only     stop after compilation (implies --plan)
//!   -h, --help             this help
//! ```
//!
//! The input document is read from XML-FILE, or from stdin when omitted —
//! `gcx` streams it either way: memory stays bounded by the query's
//! buffering needs, not the document size.

use gcx::query::{compile, pretty_query, CompileOptions};
use gcx::xml::TagInterner;
use std::io::{BufWriter, Read, Write};
use std::process::ExitCode;

struct Cli {
    query: Option<String>,
    query_file: Option<String>,
    xml_file: Option<String>,
    engine: String,
    output: Option<String>,
    stats: bool,
    plan: bool,
    optimize: bool,
    compile_only: bool,
}

const HELP: &str = "gcx — streaming XQuery with combined static/dynamic buffer minimization

USAGE:
    gcx <QUERY-FILE> [XML-FILE] [options]
    gcx -q '<r>{ for $x in /a return $x }</r>' [XML-FILE] [options]

When XML-FILE is omitted, the document is read from stdin (streaming).

OPTIONS:
    -q, --query <TEXT>     inline query text instead of a query file
    -e, --engine <NAME>    gcx (default) | nogc | static | dom
    -o, --output <FILE>    write the result to FILE (default stdout)
        --stats            print buffer/GC statistics to stderr
        --plan             print the rewritten query and projection tree
        --no-optimize      disable the paper's §6 optimizations
        --compile-only     stop after compilation (implies --plan)
    -h, --help             show this help
";

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        query: None,
        query_file: None,
        xml_file: None,
        engine: "gcx".into(),
        output: None,
        stats: false,
        plan: false,
        optimize: true,
        compile_only: false,
    };
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "-q" | "--query" => {
                cli.query = Some(args.next().ok_or("missing value for --query")?);
            }
            "-e" | "--engine" => {
                cli.engine = args.next().ok_or("missing value for --engine")?;
            }
            "-o" | "--output" => {
                cli.output = Some(args.next().ok_or("missing value for --output")?);
            }
            "--stats" => cli.stats = true,
            "--plan" => cli.plan = true,
            "--no-optimize" => cli.optimize = false,
            "--compile-only" => {
                cli.compile_only = true;
                cli.plan = true;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}' (try --help)"));
            }
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    if cli.query.is_none() {
        cli.query_file = Some(positional.next().ok_or("missing query (file or --query)")?);
    }
    cli.xml_file = positional.next();
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument '{extra}'"));
    }
    Ok(cli)
}

fn run() -> Result<(), String> {
    let cli = parse_args()?;
    let query_text = match (&cli.query, &cli.query_file) {
        (Some(q), _) => q.clone(),
        (None, Some(f)) => {
            std::fs::read_to_string(f).map_err(|e| format!("cannot read query file {f}: {e}"))?
        }
        _ => unreachable!("parse_args guarantees a query"),
    };

    let mut tags = TagInterner::new();
    let opts = if cli.optimize {
        CompileOptions::default()
    } else {
        CompileOptions::plain()
    };
    let compiled = compile(&query_text, &mut tags, opts).map_err(|e| e.to_string())?;

    if cli.plan {
        eprintln!("── rewritten query ──");
        eprintln!("{}", pretty_query(&compiled.rewritten, &tags));
        eprintln!("── projection tree ──");
        eprintln!("{}", compiled.projection.tree.pretty(&tags));
    }
    if cli.compile_only {
        return Ok(());
    }

    let input: Box<dyn Read> = match &cli.xml_file {
        Some(f) => Box::new(
            std::fs::File::open(f).map_err(|e| format!("cannot open input {f}: {e}"))?,
        ),
        None => Box::new(std::io::stdin()),
    };
    let output: Box<dyn Write> = match &cli.output {
        Some(f) => Box::new(BufWriter::new(
            std::fs::File::create(f).map_err(|e| format!("cannot create output {f}: {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout())),
    };

    let report = match cli.engine.as_str() {
        "gcx" => gcx::run_gcx(&compiled, &mut tags, input, output),
        "nogc" => gcx::run_no_gc_streaming(&compiled, &mut tags, input, output),
        "static" => gcx::run_static_projection(&compiled, &mut tags, input, output),
        "dom" => gcx::run_dom(&compiled, &mut tags, input, output),
        other => return Err(format!("unknown engine '{other}' (gcx|nogc|static|dom)")),
    }
    .map_err(|e| e.to_string())?;

    if cli.stats {
        eprintln!("engine          : {}", report.engine);
        eprintln!("time            : {:.3}s", report.elapsed.as_secs_f64());
        eprintln!("output bytes    : {}", report.output_bytes);
        eprintln!("peak buffer     : {}", report.stats.peak_human());
        eprintln!("peak nodes      : {}", report.stats.peak_nodes);
        eprintln!("nodes created   : {}", report.stats.nodes_created);
        eprintln!("nodes purged    : {}", report.stats.nodes_purged);
        eprintln!("roles ±         : {} / {}", report.stats.roles_assigned, report.stats.roles_removed);
        eprintln!("gc visits       : {}", report.stats.gc_visits);
        eprintln!("tokens read     : {}", report.tokens_read);
        eprintln!("tokens skipped  : {}", report.tokens_skipped);
        if let Some(ok) = report.safety {
            eprintln!("role accounting : {}", if ok { "balanced" } else { "VIOLATED" });
        }
    }
    if report.safety == Some(false) {
        return Err("internal error: role accounting violated".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gcx: {e}");
            ExitCode::FAILURE
        }
    }
}
