//! `gcx` — command-line streaming XQuery processor.
//!
//! ```text
//! gcx <QUERY-FILE | -q 'inline query'> [XML-FILE] [options]
//! gcx serve --queries <DIR> [XML-FILE...] [serve options]
//!
//! Options:
//!   -q, --query <TEXT>     inline query text instead of a query file
//!   -e, --engine <NAME>    gcx (default) | nogc | static | dom
//!   -o, --output <FILE>    write result to FILE (default stdout)
//!       --stats            print buffer/GC statistics to stderr
//!       --plan             print the rewritten query and projection tree
//!       --no-optimize      disable the §6 optimizations
//!       --compile-only     stop after compilation (implies --plan)
//!   -h, --help             this help
//! ```
//!
//! The input document is read from XML-FILE, or from stdin when omitted —
//! `gcx` streams it either way: memory stays bounded by the query's
//! buffering needs, not the document size.
//!
//! The `serve` subcommand exercises the concurrent session runtime
//! (`gcx-service`): every query in the directory runs against every
//! input file, through one `QueryService` with a shared compiled-query
//! cache, with per-session statistics on stderr.

use gcx::query::{compile, pretty_query, CompileOptions};
use gcx::xml::TagInterner;
use gcx::{QueryService, ServiceConfig};
use std::io::{BufWriter, Read, Write};
use std::process::ExitCode;

struct Cli {
    query: Option<String>,
    query_file: Option<String>,
    xml_file: Option<String>,
    engine: String,
    output: Option<String>,
    stats: bool,
    plan: bool,
    optimize: bool,
    compile_only: bool,
}

const HELP: &str = "gcx — streaming XQuery with combined static/dynamic buffer minimization

USAGE:
    gcx <QUERY-FILE> [XML-FILE] [options]
    gcx -q '<r>{ for $x in /a return $x }</r>' [XML-FILE] [options]
    gcx serve --queries <DIR> [XML-FILE...] [serve options]

When XML-FILE is omitted, the document is read from stdin (streaming).

OPTIONS:
    -q, --query <TEXT>     inline query text instead of a query file
    -e, --engine <NAME>    gcx (default) | nogc | static | dom
    -o, --output <FILE>    write the result to FILE (default stdout)
        --stats            print buffer/GC statistics to stderr
        --plan             print the rewritten query and projection tree
        --no-optimize      disable the paper's §6 optimizations
        --compile-only     stop after compilation (implies --plan)
    -h, --help             show this help

SERVE OPTIONS (gcx serve):
        --queries <DIR>    directory of .xq query files (required unless --listen)
        --jobs <N>         max concurrent sessions (default 8)
        --chunk <BYTES>    feed chunk size in bytes (default 65536)
        --cache <N>        compiled-query cache capacity (default 64)
        --budget <BYTES>   global memory budget (session queues + engine buffers)
        --output-dir <DIR> write each result to DIR/<query>__<input>.xml
        --listen <ADDR>    serve over HTTP instead of files, e.g. 127.0.0.1:8080
                           (port 0 picks an ephemeral port, printed on stdout)
        --workers <N>      HTTP connection workers (default 4; --listen only)
        --evaluators <N>   evaluator pool threads (default 8; --listen only)
        --max-connections <N>  admission cap: beyond this many open
                           connections, new ones get a fast 503 +
                           Retry-After (default 4096; --listen only)
        --drain-timeout <SECS> graceful-drain deadline on SIGTERM/SIGINT:
                           in-flight requests get this long to finish
                           before hard cancel (default 30; --listen only)
        --trace-sample <N> keep every Nth query request's trace in the
                           flight recorder, served by GET /trace
                           (default 64; 0 disables; --listen only)
        --slow-ms <MS>     log + trace any request slower than MS
                           milliseconds (default: GCX_SLOW_MS env, else
                           off; --listen only)

File mode: every query runs against every XML input (stdin as the single
input when no files are given), concurrently through one QueryService;
per-session statistics and the cache summary are printed to stderr.

HTTP mode (--listen): POST /query?xq=<urlencoded query> (or ?name=<query
file stem from --queries>) with the XML document as the request body —
chunked uploads stream at constant memory, results stream back chunked.
GET /stats returns live per-session buffer statistics and latency
quantiles as JSON; GET /metrics serves the same counters and histograms
in Prometheus text exposition format; GET /trace returns recent sampled
request traces as Chrome trace-event JSON (load in Perfetto or
chrome://tracing; see --trace-sample and --slow-ms / GCX_SLOW_MS). Set
GCX_LOG=error|warn|info|debug (optionally per target:
\"info,gcx_net=debug\") for structured stderr logs. SIGTERM/SIGINT drain
gracefully (see --drain-timeout).
";

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        query: None,
        query_file: None,
        xml_file: None,
        engine: "gcx".into(),
        output: None,
        stats: false,
        plan: false,
        optimize: true,
        compile_only: false,
    };
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "-q" | "--query" => {
                cli.query = Some(args.next().ok_or("missing value for --query")?);
            }
            "-e" | "--engine" => {
                cli.engine = args.next().ok_or("missing value for --engine")?;
                if !matches!(cli.engine.as_str(), "gcx" | "nogc" | "static" | "dom") {
                    return Err(format!(
                        "unknown engine '{}' (gcx|nogc|static|dom)",
                        cli.engine
                    ));
                }
            }
            "-o" | "--output" => {
                cli.output = Some(args.next().ok_or("missing value for --output")?);
            }
            "--stats" => cli.stats = true,
            "--plan" => cli.plan = true,
            "--no-optimize" => cli.optimize = false,
            "--compile-only" => {
                cli.compile_only = true;
                cli.plan = true;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}' (try --help)"));
            }
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    if cli.query.is_none() {
        cli.query_file = Some(positional.next().ok_or("missing query (file or --query)")?);
    }
    cli.xml_file = positional.next();
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument '{extra}'"));
    }
    Ok(cli)
}

struct ServeCli {
    queries_dir: String,
    xml_files: Vec<String>,
    jobs: usize,
    chunk: usize,
    cache: usize,
    budget: Option<usize>,
    output_dir: Option<String>,
    listen: Option<String>,
    workers: usize,
    evaluators: usize,
    max_connections: usize,
    drain_timeout: u64,
    trace_sample: u64,
    slow_ms: Option<u64>,
}

fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<ServeCli, String> {
    let mut cli = ServeCli {
        queries_dir: String::new(),
        xml_files: Vec::new(),
        jobs: 8,
        chunk: 64 * 1024,
        cache: 64,
        budget: None,
        output_dir: None,
        listen: None,
        workers: 4,
        evaluators: 8,
        max_connections: 4096,
        drain_timeout: 30,
        trace_sample: 64,
        // GCX_SLOW_MS is the env-var default; --slow-ms overrides it.
        slow_ms: std::env::var("GCX_SLOW_MS")
            .ok()
            .and_then(|v| v.parse().ok()),
    };
    let mut args = args.peekable();
    let parse_num = |v: Option<String>, what: &str| -> Result<usize, String> {
        v.ok_or_else(|| format!("missing value for {what}"))?
            .parse()
            .map_err(|_| format!("invalid value for {what}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "--queries" => {
                cli.queries_dir = args.next().ok_or("missing value for --queries")?;
            }
            "--jobs" => cli.jobs = parse_num(args.next(), "--jobs")?.max(1),
            "--chunk" => cli.chunk = parse_num(args.next(), "--chunk")?.max(1),
            "--cache" => cli.cache = parse_num(args.next(), "--cache")?.max(1),
            "--budget" => cli.budget = Some(parse_num(args.next(), "--budget")?),
            "--output-dir" => {
                cli.output_dir = Some(args.next().ok_or("missing value for --output-dir")?);
            }
            "--listen" => {
                cli.listen = Some(args.next().ok_or("missing value for --listen")?);
            }
            "--workers" => cli.workers = parse_num(args.next(), "--workers")?.max(1),
            "--evaluators" => cli.evaluators = parse_num(args.next(), "--evaluators")?.max(1),
            "--max-connections" => {
                cli.max_connections = parse_num(args.next(), "--max-connections")?.max(1);
            }
            "--drain-timeout" => {
                cli.drain_timeout = parse_num(args.next(), "--drain-timeout")? as u64;
            }
            "--trace-sample" => {
                cli.trace_sample = parse_num(args.next(), "--trace-sample")? as u64;
            }
            "--slow-ms" => {
                cli.slow_ms = Some(parse_num(args.next(), "--slow-ms")? as u64);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown serve option '{other}' (try --help)"));
            }
            other => cli.xml_files.push(other.to_string()),
        }
    }
    if cli.queries_dir.is_empty() && cli.listen.is_none() {
        return Err("serve requires --queries <DIR> (or --listen <ADDR>)".into());
    }
    Ok(cli)
}

/// Loads every `.xq` file of `dir` as a `(stem, text)` pair, sorted by
/// path (shared by the file-serving and HTTP-serving modes).
fn load_queries(dir: &str) -> Result<Vec<(String, String)>, String> {
    let mut query_files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read query directory {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "xq"))
        .collect();
    query_files.sort();
    query_files
        .into_iter()
        .map(|qpath| {
            let text = std::fs::read_to_string(&qpath)
                .map_err(|e| format!("cannot read query file {}: {e}", qpath.display()))?;
            Ok((file_stem(&qpath.to_string_lossy()), text))
        })
        .collect()
}

/// `gcx serve --listen`: the gcx-net HTTP front-end in the foreground.
fn run_serve_http(cli: &ServeCli) -> Result<(), String> {
    let queries = if cli.queries_dir.is_empty() {
        Vec::new()
    } else {
        load_queries(&cli.queries_dir)?
    };
    let named = queries.len();
    let addr = cli.listen.as_deref().expect("listen mode");
    let config = gcx_net::NetConfig {
        workers: cli.workers,
        evaluators: cli.evaluators,
        service: gcx::ServiceConfig {
            cache_capacity: cli.cache,
            memory_budget: cli.budget,
            ..Default::default()
        },
        queries,
        max_connections: cli.max_connections,
        trace_sample_every: cli.trace_sample,
        slow_request_threshold: cli.slow_ms.map(std::time::Duration::from_millis),
        ..Default::default()
    };
    let server =
        gcx_net::GcxServer::bind(addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("gcx-net: listening on http://{}", server.local_addr());
    println!(
        "gcx-net: {} workers, {} evaluators, {named} named queries; \
         POST /query, GET /stats, GET /metrics, GET /trace, GET /healthz",
        cli.workers, cli.evaluators,
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if gcx_net::shutdown::install_terminate_handler() {
        // Foreground loop: poll the signal flag, then drain — in-flight
        // requests finish, keep-alive clients are told to close, and
        // whatever remains past the deadline is hard-cancelled.
        while !gcx_net::shutdown::terminate_requested() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        let deadline = std::time::Duration::from_secs(cli.drain_timeout);
        eprintln!(
            "gcx-net: termination signal, draining (deadline {}s)",
            cli.drain_timeout
        );
        server.shutdown_graceful(deadline);
        eprintln!("gcx-net: drained");
    } else {
        server.wait();
    }
    Ok(())
}

fn file_stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn run_serve(args: impl Iterator<Item = String>) -> Result<(), String> {
    let cli = parse_serve_args(args)?;
    if cli.listen.is_some() {
        return run_serve_http(&cli);
    }

    let queries = load_queries(&cli.queries_dir)?;
    if queries.is_empty() {
        return Err(format!("no .xq query files in {}", cli.queries_dir));
    }

    // Inputs: each file (streamed chunk by chunk — never loaded whole,
    // preserving the engine's bounded-memory property even for huge
    // documents), or stdin buffered as the single input when no files
    // are given (stdin cannot be re-read per query).
    enum InputSrc {
        File(String),
        Mem(std::sync::Arc<[u8]>),
    }
    let mut used_names = std::collections::HashSet::new();
    let mut unique = move |base: String| -> String {
        let mut name = base.clone();
        let mut i = 1;
        while !used_names.insert(name.clone()) {
            i += 1;
            name = format!("{base}-{i}");
        }
        name
    };
    let mut inputs: Vec<(String, InputSrc)> = Vec::new();
    if cli.xml_files.is_empty() {
        let mut data = Vec::new();
        std::io::stdin()
            .read_to_end(&mut data)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        inputs.push(("stdin".to_string(), InputSrc::Mem(data.into())));
    } else {
        for f in &cli.xml_files {
            // Fail early on unreadable files, but stream the bytes later.
            std::fs::metadata(f).map_err(|e| format!("cannot read input {f}: {e}"))?;
            inputs.push((unique(file_stem(f)), InputSrc::File(f.clone())));
        }
    }

    struct ServeJob {
        query: String,
        input: InputSrc,
        label: String,
        out_path: Option<String>,
    }
    let mut used_paths = std::collections::HashSet::new();
    let mut unique_path = move |base: String| -> String {
        let mut path = format!("{base}.xml");
        let mut i = 1;
        while !used_paths.insert(path.clone()) {
            i += 1;
            path = format!("{base}-{i}.xml");
        }
        path
    };
    let mut jobs = Vec::new();
    for (qname, qtext) in &queries {
        for (iname, src) in &inputs {
            let input = match src {
                InputSrc::File(f) => InputSrc::File(f.clone()),
                InputSrc::Mem(data) => InputSrc::Mem(data.clone()),
            };
            jobs.push(ServeJob {
                query: qtext.clone(),
                input,
                label: format!("{qname}×{iname}"),
                out_path: cli
                    .output_dir
                    .as_ref()
                    .map(|dir| unique_path(format!("{dir}/{qname}__{iname}"))),
            });
        }
    }

    let service = QueryService::new(ServiceConfig {
        cache_capacity: cli.cache,
        memory_budget: cli.budget,
        max_concurrency: cli.jobs,
        ..Default::default()
    });
    if let Some(dir) = &cli.output_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    }

    // Clamp the chunk so one reservation always fits the whole budget;
    // rejected chunks then wait (feed_blocking backpressure) instead of
    // failing.
    let chunk_size = cli.budget.map_or(cli.chunk, |b| cli.chunk.min(b.max(1)));

    // One streaming session per job: feed chunks as they are read,
    // write output bytes as they are produced.
    let run_job = |job: &ServeJob| -> Result<(u64, gcx::RunReport), String> {
        let mut session = service
            .open_session(&job.query)
            .map_err(|e| e.to_string())?;
        let mut sink: Box<dyn Write> = match &job.out_path {
            Some(path) => Box::new(BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            )),
            None => Box::new(std::io::sink()),
        };
        let mut written = 0u64;
        let mut push = |sink: &mut Box<dyn Write>, bytes: &[u8]| -> Result<(), String> {
            written += bytes.len() as u64;
            sink.write_all(bytes).map_err(|e| e.to_string())
        };
        match &job.input {
            InputSrc::File(f) => {
                let mut file =
                    std::fs::File::open(f).map_err(|e| format!("cannot open input {f}: {e}"))?;
                let mut buf = vec![0u8; chunk_size];
                loop {
                    let n = file.read(&mut buf).map_err(|e| e.to_string())?;
                    if n == 0 {
                        break;
                    }
                    let out = session
                        .feed_blocking(&buf[..n])
                        .map_err(|e| e.to_string())?;
                    push(&mut sink, &out)?;
                }
            }
            InputSrc::Mem(data) => {
                for chunk in data.chunks(chunk_size) {
                    let out = session.feed_blocking(chunk).map_err(|e| e.to_string())?;
                    push(&mut sink, &out)?;
                }
            }
        }
        let outcome = session.finish().map_err(|e| e.to_string())?;
        push(&mut sink, &outcome.output)?;
        sink.flush().map_err(|e| e.to_string())?;
        Ok((written, outcome.report))
    };

    type JobResult = Result<(u64, gcx::RunReport), String>;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<JobResult>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let workers = cli.jobs.min(jobs.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                *results[i].lock().expect("result slot") = Some(run_job(job));
            });
        }
    });

    let mut failures = 0usize;
    for (job, slot) in jobs.iter().zip(results) {
        let result = slot
            .into_inner()
            .expect("result slot")
            .expect("worker filled every claimed slot");
        match result {
            Ok((output_bytes, r)) => {
                eprintln!(
                    "[{}] ok: output {}B, peak {} nodes / {}, {:.3}s, tokens {}+{} skipped, roles {}",
                    job.label,
                    output_bytes,
                    r.stats.peak_nodes,
                    r.stats.peak_human(),
                    r.elapsed.as_secs_f64(),
                    r.tokens_read,
                    r.tokens_skipped,
                    match r.safety {
                        Some(true) => "balanced",
                        Some(false) => "VIOLATED",
                        None => "n/a",
                    },
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("[{}] FAILED: {e}", job.label);
                if let Some(path) = &job.out_path {
                    // Do not leave a partial result behind.
                    std::fs::remove_file(path).ok();
                }
            }
        }
    }
    let stats = service.stats();
    eprintln!(
        "serve: {} sessions ({} failed), cache {} hits / {} misses / {} evictions",
        stats.sessions_opened,
        failures,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
    );
    if failures > 0 {
        return Err(format!("{failures} of {} sessions failed", jobs.len()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let cli = parse_args()?;
    let query_text = match (&cli.query, &cli.query_file) {
        (Some(q), _) => q.clone(),
        (None, Some(f)) => {
            std::fs::read_to_string(f).map_err(|e| format!("cannot read query file {f}: {e}"))?
        }
        _ => unreachable!("parse_args guarantees a query"),
    };

    let mut tags = TagInterner::new();
    let opts = if cli.optimize {
        CompileOptions::default()
    } else {
        CompileOptions::plain()
    };
    let compiled = compile(&query_text, &mut tags, opts).map_err(|e| e.to_string())?;

    if cli.plan {
        eprintln!("── rewritten query ──");
        eprintln!("{}", pretty_query(&compiled.rewritten, &tags));
        eprintln!("── projection tree ──");
        eprintln!("{}", compiled.projection.tree.pretty(&tags));
    }
    if cli.compile_only {
        return Ok(());
    }

    let input: Box<dyn Read> = match &cli.xml_file {
        Some(f) => {
            Box::new(std::fs::File::open(f).map_err(|e| format!("cannot open input {f}: {e}"))?)
        }
        None => Box::new(std::io::stdin()),
    };
    let output: Box<dyn Write> = match &cli.output {
        Some(f) => Box::new(BufWriter::new(
            std::fs::File::create(f).map_err(|e| format!("cannot create output {f}: {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout())),
    };

    let report = match cli.engine.as_str() {
        "gcx" => gcx::run_gcx(&compiled, &mut tags, input, output),
        "nogc" => gcx::run_no_gc_streaming(&compiled, &mut tags, input, output),
        "static" => gcx::run_static_projection(&compiled, &mut tags, input, output),
        "dom" => gcx::run_dom(&compiled, &mut tags, input, output),
        other => unreachable!("engine '{other}' rejected by parse_args"),
    }
    .map_err(|e| e.to_string())?;

    if cli.stats {
        eprintln!("engine          : {}", report.engine);
        eprintln!("time            : {:.3}s", report.elapsed.as_secs_f64());
        eprintln!("output bytes    : {}", report.output_bytes);
        eprintln!("peak buffer     : {}", report.stats.peak_human());
        eprintln!("peak nodes      : {}", report.stats.peak_nodes);
        eprintln!("nodes created   : {}", report.stats.nodes_created);
        eprintln!("nodes purged    : {}", report.stats.nodes_purged);
        eprintln!(
            "roles ±         : {} / {}",
            report.stats.roles_assigned, report.stats.roles_removed
        );
        eprintln!("gc visits       : {}", report.stats.gc_visits);
        eprintln!("tokens read     : {}", report.tokens_read);
        eprintln!("tokens skipped  : {}", report.tokens_skipped);
        eprintln!("bytes skipped   : {}", report.bytes_skipped);
        if let Some(ok) = report.safety {
            eprintln!(
                "role accounting : {}",
                if ok { "balanced" } else { "VIOLATED" }
            );
        }
    }
    if report.safety == Some(false) {
        return Err("internal error: role accounting violated".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let result = if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        run_serve(args)
    } else {
        run()
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gcx: {e}");
            ExitCode::FAILURE
        }
    }
}
