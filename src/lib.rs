//! # GCX-RS — streaming XQuery evaluation with combined static and
//! # dynamic buffer minimization
//!
//! A Rust reproduction of *"Combined Static and Dynamic Analysis for
//! Effective Buffer Minimization in Streaming XQuery Evaluation"*
//! (Schmidt, Scherzinger, Koch; ICDE 2007) — the **GCX** engine.
//!
//! GCX evaluates a practical fragment of XQuery over XML streams while
//! keeping main-memory consumption minimal:
//!
//! * **static analysis** derives a *projection tree* from the query, so
//!   only relevant input is buffered, annotated with *roles* describing
//!   its future relevance;
//! * **dynamic analysis** — *active garbage collection* — purges buffered
//!   nodes the moment statically inserted `signOff` statements prove them
//!   irrelevant.
//!
//! ## Quickstart
//!
//! ```
//! let query = r#"<out>{ for $b in /bib/book return $b/title }</out>"#;
//! let xml = "<bib><book><title>Streams</title></book></bib>";
//! let result = gcx::evaluate_to_string(query, xml).unwrap();
//! assert_eq!(result, "<out><title>Streams</title></out>");
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`xml`] (gcx-xml) | streaming lexer, tag interner, writer, DOM |
//! | [`projection`] (gcx-projection) | projection trees, roles, lazy DFA matcher |
//! | [`buffer`] (gcx-buffer) | buffer tree + active garbage collection |
//! | [`query`] (gcx-query) | XQ parser, rewriting, static analysis |
//! | [`core`] (gcx-core) | the GCX engine + baseline engines |
//! | [`xmark`] (gcx-xmark) | XMark-like generator + benchmark queries |
//! | [`service`] (gcx-service) | push-based sessions, query cache, evaluator pool |
//! | [`net`] (gcx-net) | HTTP/1.1 streaming front-end + live `/stats` |

pub use gcx_buffer as buffer;
pub use gcx_core as core;
pub use gcx_net as net;
pub use gcx_projection as projection;
pub use gcx_query as query;
pub use gcx_service as service;
pub use gcx_xmark as xmark;
pub use gcx_xml as xml;

pub use gcx_core::{
    run_dom, run_gcx, run_no_gc_streaming, run_static_projection, CancelFlag, EngineError,
    EngineOptions, GcxEngine, RunReport,
};
pub use gcx_query::{compile, compile_default, CompileOptions, CompiledQuery};
pub use gcx_service::{
    BatchJob, QueryService, ServiceConfig, ServiceError, SessionOutcome, StreamSession,
};
pub use gcx_xml::TagInterner;

use std::fmt;

/// Everything that can go wrong in [`evaluate_to_string`] and
/// [`evaluate_chunked`].
#[derive(Debug)]
pub enum Error {
    Compile(gcx_query::CompileError),
    Engine(EngineError),
    Service(ServiceError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "{e}"),
            Error::Engine(e) => write!(f, "{e}"),
            Error::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

/// One-shot convenience: compiles `query`, streams `xml` through the GCX
/// engine and returns the result document as a string.
pub fn evaluate_to_string(query: &str, xml: &str) -> Result<String, Error> {
    let mut tags = TagInterner::new();
    let compiled = compile_default(query, &mut tags).map_err(Error::Compile)?;
    let mut out = Vec::new();
    run_gcx(&compiled, &mut tags, xml.as_bytes(), &mut out).map_err(Error::Engine)?;
    Ok(String::from_utf8(out).expect("writer emits UTF-8"))
}

/// As [`evaluate_to_string`], returning the run report alongside the
/// output (peak buffer size, role traffic, timing).
pub fn evaluate_with_report(query: &str, xml: &str) -> Result<(String, RunReport), Error> {
    let mut tags = TagInterner::new();
    let compiled = compile_default(query, &mut tags).map_err(Error::Compile)?;
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, xml.as_bytes(), &mut out).map_err(Error::Engine)?;
    Ok((String::from_utf8(out).expect("utf8"), report))
}

/// Push-based convenience: compiles `query` and feeds `chunks` through a
/// [`StreamSession`] as they come, exactly as a network server would.
/// Output and [`RunReport`] are byte-for-byte what [`run_gcx`] produces
/// on the concatenated input, for *any* chunking — including splits in
/// the middle of tags, entities or multi-byte characters.
pub fn evaluate_chunked<'a, I>(query: &str, chunks: I) -> Result<(String, RunReport), Error>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    use std::sync::Arc;
    let mut tags = TagInterner::new();
    let compiled = compile_default(query, &mut tags).map_err(Error::Compile)?;
    let mut session = StreamSession::new(
        Arc::new(compiled),
        tags,
        gcx_service::SessionConfig::default(),
    );
    let mut out = Vec::new();
    for chunk in chunks {
        out.extend_from_slice(&session.feed(chunk).map_err(Error::Service)?);
    }
    let outcome = session.finish().map_err(Error::Service)?;
    out.extend_from_slice(&outcome.output);
    Ok((
        String::from_utf8(out).expect("writer emits UTF-8"),
        outcome.report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_works() {
        let out = evaluate_to_string(
            "<out>{ for $b in /bib/book return $b/title }</out>",
            "<bib><book><title>Streams</title></book></bib>",
        )
        .unwrap();
        assert_eq!(out, "<out><title>Streams</title></out>");
    }

    #[test]
    fn report_contains_safety() {
        let (_, report) = evaluate_with_report(
            "<out>{ for $b in /bib/book return $b/title }</out>",
            "<bib><book><title>X</title></book></bib>",
        )
        .unwrap();
        assert_eq!(report.safety, Some(true));
        assert!(report.stats.peak_nodes > 0);
    }

    #[test]
    fn compile_errors_surface() {
        assert!(matches!(
            evaluate_to_string("<out>{ $nope }</out>", "<a/>"),
            Err(Error::Compile(_))
        ));
    }

    #[test]
    fn engine_errors_surface() {
        assert!(matches!(
            evaluate_to_string("<out>{ for $x in /a return $x }</out>", "<a><b></a>"),
            Err(Error::Engine(_))
        ));
    }

    #[test]
    fn chunked_matches_one_shot() {
        let query = "<out>{ for $b in /bib/book return $b/title }</out>";
        let xml = "<bib><book><title>Streams</title></book></bib>";
        let (whole, report_whole) = evaluate_with_report(query, xml).unwrap();
        let chunks: Vec<&[u8]> = xml.as_bytes().chunks(5).collect();
        let (chunked, report_chunked) = evaluate_chunked(query, chunks).unwrap();
        assert_eq!(whole, chunked);
        assert_eq!(
            report_whole.stats.peak_nodes,
            report_chunked.stats.peak_nodes
        );
    }

    #[test]
    fn chunked_surfaces_stream_errors() {
        assert!(matches!(
            evaluate_chunked(
                "<out>{ for $x in /a return $x }</out>",
                [&b"<a><b></a>"[..]]
            ),
            Err(Error::Service(_))
        ));
    }
}
