//! # GCX-RS — streaming XQuery evaluation with combined static and
//! # dynamic buffer minimization
//!
//! A Rust reproduction of *"Combined Static and Dynamic Analysis for
//! Effective Buffer Minimization in Streaming XQuery Evaluation"*
//! (Schmidt, Scherzinger, Koch; ICDE 2007) — the **GCX** engine.
//!
//! GCX evaluates a practical fragment of XQuery over XML streams while
//! keeping main-memory consumption minimal:
//!
//! * **static analysis** derives a *projection tree* from the query, so
//!   only relevant input is buffered, annotated with *roles* describing
//!   its future relevance;
//! * **dynamic analysis** — *active garbage collection* — purges buffered
//!   nodes the moment statically inserted `signOff` statements prove them
//!   irrelevant.
//!
//! ## Quickstart
//!
//! ```
//! let query = r#"<out>{ for $b in /bib/book return $b/title }</out>"#;
//! let xml = "<bib><book><title>Streams</title></book></bib>";
//! let result = gcx::evaluate_to_string(query, xml).unwrap();
//! assert_eq!(result, "<out><title>Streams</title></out>");
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`xml`] (gcx-xml) | streaming lexer, tag interner, writer, DOM |
//! | [`projection`] (gcx-projection) | projection trees, roles, lazy DFA matcher |
//! | [`buffer`] (gcx-buffer) | buffer tree + active garbage collection |
//! | [`query`] (gcx-query) | XQ parser, rewriting, static analysis |
//! | [`core`] (gcx-core) | the GCX engine + baseline engines |
//! | [`xmark`] (gcx-xmark) | XMark-like generator + benchmark queries |

pub use gcx_buffer as buffer;
pub use gcx_core as core;
pub use gcx_projection as projection;
pub use gcx_query as query;
pub use gcx_xmark as xmark;
pub use gcx_xml as xml;

pub use gcx_core::{
    run_dom, run_gcx, run_no_gc_streaming, run_static_projection, EngineError, EngineOptions,
    GcxEngine, RunReport,
};
pub use gcx_query::{compile, compile_default, CompileOptions, CompiledQuery};
pub use gcx_xml::TagInterner;

use std::fmt;

/// Everything that can go wrong in [`evaluate_to_string`].
#[derive(Debug)]
pub enum Error {
    Compile(gcx_query::CompileError),
    Engine(EngineError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "{e}"),
            Error::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

/// One-shot convenience: compiles `query`, streams `xml` through the GCX
/// engine and returns the result document as a string.
pub fn evaluate_to_string(query: &str, xml: &str) -> Result<String, Error> {
    let mut tags = TagInterner::new();
    let compiled = compile_default(query, &mut tags).map_err(Error::Compile)?;
    let mut out = Vec::new();
    run_gcx(&compiled, &mut tags, xml.as_bytes(), &mut out).map_err(Error::Engine)?;
    Ok(String::from_utf8(out).expect("writer emits UTF-8"))
}

/// As [`evaluate_to_string`], returning the run report alongside the
/// output (peak buffer size, role traffic, timing).
pub fn evaluate_with_report(query: &str, xml: &str) -> Result<(String, RunReport), Error> {
    let mut tags = TagInterner::new();
    let compiled = compile_default(query, &mut tags).map_err(Error::Compile)?;
    let mut out = Vec::new();
    let report = run_gcx(&compiled, &mut tags, xml.as_bytes(), &mut out).map_err(Error::Engine)?;
    Ok((String::from_utf8(out).expect("utf8"), report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_works() {
        let out = evaluate_to_string(
            "<out>{ for $b in /bib/book return $b/title }</out>",
            "<bib><book><title>Streams</title></book></bib>",
        )
        .unwrap();
        assert_eq!(out, "<out><title>Streams</title></out>");
    }

    #[test]
    fn report_contains_safety() {
        let (_, report) = evaluate_with_report(
            "<out>{ for $b in /bib/book return $b/title }</out>",
            "<bib><book><title>X</title></book></bib>",
        )
        .unwrap();
        assert_eq!(report.safety, Some(true));
        assert!(report.stats.peak_nodes > 0);
    }

    #[test]
    fn compile_errors_surface() {
        assert!(matches!(
            evaluate_to_string("<out>{ $nope }</out>", "<a/>"),
            Err(Error::Compile(_))
        ));
    }

    #[test]
    fn engine_errors_surface() {
        assert!(matches!(
            evaluate_to_string("<out>{ for $x in /a return $x }</out>", "<a><b></a>"),
            Err(Error::Engine(_))
        ));
    }
}
